"""Tactic framework: AST base class, registry, and the runner.

Every tactic is a frozen dataclass (its AST node) plus an *executor*
function registered against that class.  The runner:

* clones the proof state's metavariable store first, so failed or
  alternative tactic applications never corrupt sibling states in the
  search tree;
* converts any kernel-level failure (:class:`KernelError`,
  :class:`UnificationError`, ...) into :class:`TacticError` — the
  "rejected by Coq" outcome of the paper's validity check;
* enforces a wall-clock deadline when the caller provides one (the
  paper invalidates tactics that run for more than 5 seconds).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Type as PyType

from repro.errors import KernelError, ReproError, TacticError, TacticTimeout
from repro.kernel.env import Environment
from repro.kernel.goals import ProofState

__all__ = ["TacticNode", "executor", "run_tactic", "Deadline", "check_deadline"]


class TacticNode:
    """Base class of all tactic AST nodes."""

    __slots__ = ()

    def render(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    def __str__(self) -> str:
        return self.render()


Executor = Callable[[Environment, ProofState, "TacticNode"], ProofState]

_REGISTRY: Dict[PyType, Executor] = {}


def executor(node_cls: PyType):
    """Class decorator registering ``fn`` as the executor for ``node_cls``."""

    def wrap(fn: Executor) -> Executor:
        if node_cls in _REGISTRY:
            raise ValueError(f"duplicate executor for {node_cls.__name__}")
        _REGISTRY[node_cls] = fn
        return fn

    return wrap


@dataclass
class Deadline:
    """A wall-clock deadline shared across one tactic execution."""

    expires_at: float

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        return cls(time.monotonic() + seconds)

    def expired(self) -> bool:
        return time.monotonic() > self.expires_at


_ACTIVE_DEADLINE: list = []


def check_deadline() -> None:
    """Raise :class:`TacticTimeout` if the active deadline has passed.

    Long-running executors (``auto``, ``repeat``, ``lia``) call this in
    their inner loops.
    """
    if _ACTIVE_DEADLINE and _ACTIVE_DEADLINE[-1].expired():
        raise TacticTimeout("tactic exceeded its time budget")


def run_tactic(
    env: Environment,
    state: ProofState,
    node: TacticNode,
    timeout: Optional[float] = None,
) -> ProofState:
    """Execute one tactic, returning the new proof state.

    Raises :class:`TacticError` when the tactic is rejected and
    :class:`TacticTimeout` when it exceeds ``timeout`` seconds.
    """
    if not state.goals:
        raise TacticError("no goals remain")
    fn = _REGISTRY.get(type(node))
    if fn is None:
        raise TacticError(f"unknown tactic: {node.render()}")
    working = state.clone_store()
    if timeout is not None:
        _ACTIVE_DEADLINE.append(Deadline.after(timeout))
    try:
        return fn(env, working, node)
    except TacticError:
        raise
    except ReproError as exc:
        raise TacticError(f"{node.render()}: {exc}") from exc
    finally:
        if timeout is not None:
            _ACTIVE_DEADLINE.pop()


def dispatch(env: Environment, state: ProofState, node: TacticNode) -> ProofState:
    """Run a sub-tactic *without* recloning (for combinators/auto)."""
    fn = _REGISTRY.get(type(node))
    if fn is None:
        raise TacticError(f"unknown tactic: {node.render()}")
    check_deadline()
    return fn(env, state, node)
