"""``destruct``: case analysis on variables, hypotheses, and terms."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import TacticError
from repro.kernel.env import Environment
from repro.kernel.goals import Goal, HypDecl, ProofState, VarDecl
from repro.kernel.subst import alpha_eq, fresh_name, subst_var
from repro.kernel.terms import (
    And,
    App,
    Const,
    Eq,
    Exists,
    FalseP,
    Impl,
    Or,
    Term,
    TrueP,
    Var,
    app,
)
from repro.kernel.types import TCon
from repro.tactics.ast import Destruct
from repro.tactics.base import executor
from repro.tactics.common import fresh_hyp_names, infer_in_goal
from repro.tactics.induction_ import (
    arg_name_hint,
    instantiated_constructors,
    resolved_goal,
    split_variable,
)
from repro.tactics.rewrite_ import _replace_all


def _parse_pattern(pattern: Optional[str]) -> Optional[List[List[str]]]:
    """``"[A | B]"`` -> ``[['A'], ['B']]``; ``"[x H]"`` -> ``[['x','H']]``."""
    if pattern is None:
        return None
    inner = pattern.strip()
    if inner.startswith("["):
        inner = inner[1:]
    if inner.endswith("]"):
        inner = inner[:-1]
    return [branch.split() for branch in inner.split("|")]


def _destruct_hyp(
    env: Environment,
    state: ProofState,
    goal: Goal,
    hyp: HypDecl,
    pattern: Optional[str],
) -> ProofState:
    prop = state.resolve(hyp.prop)
    branches = _parse_pattern(pattern)

    if isinstance(prop, FalseP):
        return state.replace_focused([])
    if isinstance(prop, TrueP):
        return state.replace_focused([goal.remove_decl(hyp.name)])
    if isinstance(prop, And):
        names = (
            branches[0]
            if branches and len(branches[0]) == 2
            else fresh_hyp_names(goal.remove_decl(hyp.name), 2)
        )
        base = goal.remove_decl(hyp.name)
        new_goal = base.add(HypDecl(names[0], prop.lhs)).add(
            HypDecl(names[1], prop.rhs)
        )
        return state.replace_focused([new_goal])
    if isinstance(prop, Or):
        base = goal.remove_decl(hyp.name)
        if branches and len(branches) == 2:
            left_name = branches[0][0] if branches[0] else hyp.name
            right_name = branches[1][0] if branches[1] else hyp.name
        else:
            left_name = right_name = hyp.name
        left_goal = base.add(HypDecl(left_name, prop.lhs))
        right_goal = base.add(HypDecl(right_name, prop.rhs))
        return state.replace_focused([left_goal, right_goal])
    if isinstance(prop, Exists):
        base = goal.remove_decl(hyp.name)
        taken = set(base.names())
        if branches and len(branches[0]) == 2:
            var_name, hyp_name = branches[0]
        else:
            var_name = fresh_name(prop.var, taken)
            hyp_name = hyp.name
        if prop.ty is None:
            raise TacticError("destruct: existential binder type unknown")
        body = subst_var(prop.body, prop.var, Var(var_name))
        new_goal = base.add(VarDecl(var_name, prop.ty)).add(
            HypDecl(hyp_name, body)
        )
        return state.replace_focused([new_goal])
    raise TacticError(
        f"destruct: cannot decompose {hyp.name} (try inversion for "
        "inductive predicates)"
    )


def _destruct_term(
    env: Environment,
    state: ProofState,
    goal: Goal,
    raw: Term,
    eqn: Optional[str] = None,
) -> ProofState:
    term, ty = infer_in_goal(env, goal, raw)
    if not isinstance(ty, TCon):
        raise TacticError(f"destruct: cannot case split on type {ty}")
    ind = env.inductive_for_type(ty)
    if ind is None:
        raise TacticError(f"destruct: {ty} is not an inductive datatype")
    cases: List[Goal] = []
    for ctor, arg_types in instantiated_constructors(env, ind, ty):
        taken = set(goal.names())
        arg_vars = []
        arg_decls = []
        for i, arg_ty in enumerate(arg_types):
            hint = (
                ctor.arg_hints[i]
                if i < len(ctor.arg_hints)
                else arg_name_hint(arg_ty)
            )
            name = fresh_name(hint, taken)
            taken.add(name)
            arg_decls.append(VarDecl(name, arg_ty))
            arg_vars.append(Var(name))
        instance = app(Const(ctor.name), *arg_vars)
        concl = _replace_all(goal.concl, term, instance)
        # Substitute in hypotheses as well (like Coq's
        # ``destruct ... eqn:E; rewrite E in *`` idiom), so facts about
        # the scrutinee specialize to each case.
        decls = tuple(
            HypDecl(d.name, _replace_all(d.prop, term, instance))
            if isinstance(d, HypDecl)
            else d
            for d in goal.decls
        )
        decls = decls + tuple(arg_decls)
        if eqn is not None:
            if any(d.name == eqn for d in decls):
                raise TacticError(f"destruct: name already used: {eqn}")
            decls = decls + (HypDecl(eqn, Eq(None, term, instance)),)
        cases.append(Goal(decls, concl))
    return state.replace_focused(cases)


@executor(Destruct)
def run_destruct(env: Environment, state: ProofState, node: Destruct) -> ProofState:
    goal = resolved_goal(state, state.focused())
    if node.raw_term is not None:
        return _destruct_term(env, state, goal, node.raw_term, node.eqn)
    decl = goal.lookup(node.target)
    if isinstance(decl, HypDecl):
        return _destruct_hyp(env, state, goal, decl, node.pattern)
    if isinstance(decl, VarDecl):
        cases = split_variable(env, goal, node.target, with_ih=False)
        return state.replace_focused(cases)
    # Coq also destructs a quantified variable after auto-intro.
    from repro.tactics.induction_ import intro_up_to

    state = intro_up_to(env, state, node.target)
    goal = resolved_goal(state, state.focused())
    cases = split_variable(env, goal, node.target, with_ih=False)
    return state.replace_focused(cases)
