"""Cooperative wall-clock deadlines, shared by every layer.

A :class:`Deadline` is an absolute expiry instant plus the clock that
defines it.  The clock is *injectable* (any ``() -> float``), so tests
drive timeout paths with fake clocks and never sleep for real.

The module also hosts the **active-deadline stack**: the tactic runner
pushes the current tactic's deadline before executing, and the
long-running inner loops — combinator ``repeat``, ``auto``'s search,
``lia``'s elimination, congruence closure, and the kernel reduction
engine's step budget — poll :func:`check_deadline` so a runaway tactic
is interrupted *at* its budget instead of detected after the fact.
The stack is thread-local: thread-pool executors run independent
searches concurrently, and one task's deadline must never cancel
another's tactic.

Layering: this module depends only on :mod:`repro.errors`, so the
kernel, tactics, serapi, and eval layers can all import it without
cycles.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import TacticTimeout

__all__ = [
    "Deadline",
    "TIMEOUT_MESSAGE",
    "active_deadline",
    "check_deadline",
    "pop_deadline",
    "push_deadline",
]

# The one message every timeout path agrees on: the cooperative
# in-flight interrupt (check_deadline) and the checker's post-hoc
# verdict must be indistinguishable to callers and to stored records.
TIMEOUT_MESSAGE = "tactic exceeded its time budget"


@dataclass
class Deadline:
    """A wall-clock deadline with an injectable clock."""

    expires_at: float
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)

    @classmethod
    def after(
        cls, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        return cls(clock() + seconds, clock)

    def expired(self) -> bool:
        return self.clock() > self.expires_at

    def remaining(self) -> float:
        return max(0.0, self.expires_at - self.clock())


class _Stack(threading.local):
    def __init__(self) -> None:
        self.frames: List[Deadline] = []


_ACTIVE = _Stack()


def push_deadline(deadline: Deadline) -> None:
    _ACTIVE.frames.append(deadline)


def pop_deadline() -> None:
    _ACTIVE.frames.pop()


def active_deadline() -> Optional[Deadline]:
    """The innermost deadline governing the current thread, if any."""
    frames = _ACTIVE.frames
    return frames[-1] if frames else None


def check_deadline() -> None:
    """Raise :class:`TacticTimeout` if the active deadline has passed.

    Long-running executors (``auto``, ``repeat``, ``lia``,
    ``congruence``) and the reduction step budget call this in their
    inner loops.
    """
    frames = _ACTIVE.frames
    if frames and frames[-1].expired():
        raise TacticTimeout(TIMEOUT_MESSAGE)
