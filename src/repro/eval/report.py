"""ASCII rendering of the paper's tables and figures."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.eval.categories import CategoryCoverage
from repro.eval.coverage import BIN_LABELS, BinCoverage

__all__ = [
    "render_figure1",
    "render_table1",
    "render_table2",
    "fmt_pct",
]


def fmt_pct(value: Optional[float]) -> str:
    if value is None:
        return "   - "
    return f"{100 * value:5.1f}%"


def render_figure1(
    series: Dict[str, List[BinCoverage]], title: str = "Figure 1"
) -> str:
    """Per-model coverage across human-proof token-length bins."""
    lines = [title, ""]
    header = f"{'model':28}" + "".join(f"{label:>8}" for label in BIN_LABELS)
    lines.append(header)
    lines.append("-" * len(header))
    for name, bins in series.items():
        cells = []
        for b in bins:
            cells.append(
                f"{fmt_pct(b.coverage):>8}" if b.total else f"{'—':>8}"
            )
        lines.append(f"{name:28}" + "".join(cells))
    # Bin populations, once.
    any_bins = next(iter(series.values()))
    lines.append(
        f"{'(n per bin)':28}"
        + "".join(f"{b.total:>8}" for b in any_bins)
    )
    return "\n".join(lines)


def render_table1(
    rows_by_model: Dict[str, List[CategoryCoverage]],
    title: str = "Table 1",
) -> str:
    lines = [title, ""]
    categories = [r.category for r in next(iter(rows_by_model.values()))]
    header = f"{'model':24}" + "".join(f"{c:>22}" for c in categories)
    lines.append(header)
    lines.append("-" * len(header))
    for model, rows in rows_by_model.items():
        cells = []
        for row in rows:
            cells.append(
                f"{fmt_pct(row.actual)} / {fmt_pct(row.expected):>7}".rjust(22)
            )
        lines.append(f"{model:24}" + "".join(cells))
    lines.append("(each cell: actual / expected coverage)")
    return "\n".join(lines)


def render_table2(rows: Sequence[dict], title: str = "Table 2") -> str:
    lines = [title, ""]
    header = (
        f"{'model':24}{'proved':>16}{'stuck':>16}{'fuelout':>16}"
        f"{'similarity':>16}{'length':>18}"
    )
    lines.append(header)
    lines.append("-" * len(header))

    def arrow_pct(pair) -> str:
        a, b = pair
        return f"{100 * a:4.1f}%->{100 * b:4.1f}%"

    def arrow_val(pair) -> str:
        a, b = pair
        if a is None or b is None:
            return "-"
        return f"{a:.3f}->{b:.3f}"

    def arrow_len(pair) -> str:
        a, b = pair
        if a is None or b is None:
            return "-"
        return f"{a:5.1f}%->{b:5.1f}%"

    for row in rows:
        lines.append(
            f"{row['model']:24}"
            f"{arrow_pct(row['proved']):>16}"
            f"{arrow_pct(row['stuck']):>16}"
            f"{arrow_pct(row['fuelout']):>16}"
            f"{arrow_val(row['similarity']):>16}"
            f"{arrow_len(row['length_pct']):>18}"
        )
    lines.append("(each cell: without hints -> with hints)")
    return "\n".join(lines)
