"""ASCII rendering of the paper's tables and figures."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.eval.categories import CategoryCoverage
from repro.eval.coverage import BIN_LABELS, BinCoverage

__all__ = [
    "render_figure1",
    "render_table1",
    "render_table2",
    "render_coverage_at_k",
    "render_metrics",
    "fmt_pct",
]


def fmt_pct(value: Optional[float]) -> str:
    if value is None:
        return "   - "
    return f"{100 * value:5.1f}%"


def render_figure1(
    series: Dict[str, List[BinCoverage]], title: str = "Figure 1"
) -> str:
    """Per-model coverage across human-proof token-length bins."""
    lines = [title, ""]
    header = f"{'model':28}" + "".join(f"{label:>8}" for label in BIN_LABELS)
    lines.append(header)
    lines.append("-" * len(header))
    for name, bins in series.items():
        cells = []
        for b in bins:
            cells.append(
                f"{fmt_pct(b.coverage):>8}" if b.total else f"{'—':>8}"
            )
        lines.append(f"{name:28}" + "".join(cells))
    # Bin populations, once.
    any_bins = next(iter(series.values()))
    lines.append(
        f"{'(n per bin)':28}"
        + "".join(f"{b.total:>8}" for b in any_bins)
    )
    return "\n".join(lines)


def render_table1(
    rows_by_model: Dict[str, List[CategoryCoverage]],
    title: str = "Table 1",
) -> str:
    lines = [title, ""]
    categories = [r.category for r in next(iter(rows_by_model.values()))]
    header = f"{'model':24}" + "".join(f"{c:>22}" for c in categories)
    lines.append(header)
    lines.append("-" * len(header))
    for model, rows in rows_by_model.items():
        cells = []
        for row in rows:
            cells.append(
                f"{fmt_pct(row.actual)} / {fmt_pct(row.expected):>7}".rjust(22)
            )
        lines.append(f"{model:24}" + "".join(cells))
    lines.append("(each cell: actual / expected coverage)")
    return "\n".join(lines)


def render_table2(rows: Sequence[dict], title: str = "Table 2") -> str:
    lines = [title, ""]
    header = (
        f"{'model':24}{'proved':>16}{'stuck':>16}{'fuelout':>16}"
        f"{'similarity':>16}{'length':>18}"
    )
    lines.append(header)
    lines.append("-" * len(header))

    def arrow_pct(pair) -> str:
        a, b = pair
        return f"{100 * a:4.1f}%->{100 * b:4.1f}%"

    def arrow_val(pair) -> str:
        a, b = pair
        if a is None or b is None:
            return "-"
        return f"{a:.3f}->{b:.3f}"

    def arrow_len(pair) -> str:
        a, b = pair
        if a is None or b is None:
            return "-"
        return f"{a:5.1f}%->{b:5.1f}%"

    for row in rows:
        lines.append(
            f"{row['model']:24}"
            f"{arrow_pct(row['proved']):>16}"
            f"{arrow_pct(row['stuck']):>16}"
            f"{arrow_pct(row['fuelout']):>16}"
            f"{arrow_val(row['similarity']):>16}"
            f"{arrow_len(row['length_pct']):>18}"
        )
    lines.append("(each cell: without hints -> with hints)")
    return "\n".join(lines)


def render_coverage_at_k(
    series: Dict[str, Dict[int, float]], title: str = "coverage@k"
) -> str:
    """Per-setting coverage@k table over sampled attempts.

    ``series`` maps a row label (e.g. ``"gpt-4o hints"``) to the
    ``{k: coverage}`` dict from
    :func:`repro.eval.coverage.coverage_at_k`.
    """
    lines = [title, ""]
    ks = sorted({k for cov in series.values() for k in cov})
    header = f"{'setting':28}" + "".join(f"{'@' + str(k):>10}" for k in ks)
    lines.append(header)
    lines.append("-" * len(header))
    for label, cov in series.items():
        cells = "".join(
            f"{fmt_pct(cov[k]):>10}" if k in cov else f"{'—':>10}"
            for k in ks
        )
        lines.append(f"{label:28}{cells}")
    return "\n".join(lines)


def render_metrics(snapshot: dict, title: str = "Instrumentation") -> str:
    """Per-stage timing + counter report from a ``Metrics`` snapshot."""
    from repro.eval.instrumentation import STAGES

    lines = [title, ""]
    stages = snapshot.get("stages", {})
    if stages:
        header = f"{'stage':16}{'calls':>10}{'seconds':>12}{'ms/call':>12}"
        lines.append(header)
        lines.append("-" * len(header))
        ordered = [s for s in STAGES if s in stages] + sorted(
            s for s in stages if s not in STAGES
        )
        for stage in ordered:
            cell = stages[stage]
            calls = cell.get("calls", 0)
            seconds = cell.get("seconds", 0.0)
            per_call = 1000.0 * seconds / calls if calls else 0.0
            lines.append(
                f"{stage:16}{calls:>10}{seconds:>12.3f}{per_call:>12.2f}"
            )
    counters = snapshot.get("counters", {})
    verdicts = {
        name[len("verdict."):]: count
        for name, count in counters.items()
        if name.startswith("verdict.")
    }
    if verdicts:
        total = sum(verdicts.values())
        lines.append("")
        lines.append(f"{'verdict':16}{'count':>10}{'share':>12}")
        lines.append("-" * 38)
        for verdict in sorted(verdicts, key=verdicts.get, reverse=True):
            count = verdicts[verdict]
            lines.append(
                f"{verdict:16}{count:>10}{fmt_pct(count / total):>12}"
            )
    caches: Dict[str, Dict[str, int]] = {}
    for name, count in counters.items():
        if name.startswith("kernel.cache.") and name.count(".") == 3:
            _, _, cache_name, field = name.split(".")
            caches.setdefault(cache_name, {})[field] = count
    if caches:
        lines.append("")
        header = f"{'kernel cache':16}{'hits':>10}{'misses':>10}{'hit rate':>12}"
        lines.append(header)
        lines.append("-" * len(header))
        for cache_name in sorted(caches):
            cell = caches[cache_name]
            hits = cell.get("hits", 0)
            misses = cell.get("misses", 0)
            total = hits + misses
            rate = fmt_pct(hits / total) if total else fmt_pct(None)
            lines.append(
                f"{cache_name:16}{hits:>10}{misses:>10}{rate:>12}"
            )
    resilience = {
        name: count
        for name, count in sorted(counters.items())
        if name.startswith(("llm.", "executor.")) or name == "tasks.crashed"
    }
    if resilience:
        lines.append("")
        header = f"{'resilience':26}{'count':>10}"
        lines.append(header)
        lines.append("-" * len(header))
        for name, count in resilience.items():
            lines.append(f"{name:26}{count:>10}")
    other = {
        name: count
        for name, count in sorted(counters.items())
        if not name.startswith(("verdict.", "kernel.cache.", "llm.", "executor."))
        and name != "tasks.crashed"
    }
    if other:
        lines.append("")
        for name, count in other.items():
            lines.append(f"{name:26}{count:>10}")
    return "\n".join(lines)
