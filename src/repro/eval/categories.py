"""Table 1: coverage by theorem category, actual vs expected.

*Actual* coverage is the proved fraction within a category.
*Expected* coverage is category-agnostic: for each theorem, look up
the coverage of its human-proof-length bin over the *whole* run, then
average within the category — the paper's control for the fact that
File System lemmas simply have longer proofs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.corpus.model import CATEGORIES
from repro.corpus.tokenizer import bin_of_length
from repro.eval.coverage import coverage_by_bin
from repro.eval.runner import TheoremOutcome

__all__ = ["CategoryCoverage", "category_table"]


@dataclass
class CategoryCoverage:
    category: str
    total: int
    actual: Optional[float]
    expected: Optional[float]


def category_table(
    outcomes: Sequence[TheoremOutcome],
) -> List[CategoryCoverage]:
    bins = coverage_by_bin(outcomes)
    bin_cov = [b.coverage for b in bins]
    rows: List[CategoryCoverage] = []
    for category in CATEGORIES:
        subset = [o for o in outcomes if o.theorem.category == category]
        if not subset:
            rows.append(CategoryCoverage(category, 0, None, None))
            continue
        actual = sum(o.proved for o in subset) / len(subset)
        expected_terms = []
        for outcome in subset:
            cov = bin_cov[bin_of_length(outcome.theorem.proof_tokens)]
            if cov is not None:
                expected_terms.append(cov)
        expected = (
            sum(expected_terms) / len(expected_terms)
            if expected_terms
            else None
        )
        rows.append(CategoryCoverage(category, len(subset), actual, expected))
    return rows
