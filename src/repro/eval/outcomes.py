"""Table 2: outcome distribution and qualitative metrics.

Per (model, vanilla→hint) pair: proved %, stuck %, fuelout %, the
average normalized Levenshtein similarity of generated proofs to the
human ones, and the average generated/human length ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core import Status
from repro.eval.runner import EvalRun

__all__ = ["OutcomeRow", "outcome_row", "table2_rows"]


@dataclass
class OutcomeRow:
    model: str
    proved: float
    stuck: float
    fuelout: float
    similarity: Optional[float]
    length_pct: Optional[float]

    @staticmethod
    def arrow(vanilla: "OutcomeRow", hinted: "OutcomeRow") -> dict:
        """Paper-style "without → with hints" cell values."""

        def pair(attr):
            return (getattr(vanilla, attr), getattr(hinted, attr))

        return {
            "model": vanilla.model,
            "proved": pair("proved"),
            "stuck": pair("stuck"),
            "fuelout": pair("fuelout"),
            "similarity": pair("similarity"),
            "length_pct": pair("length_pct"),
        }


def outcome_row(run: EvalRun) -> OutcomeRow:
    proved = run.proved_fraction()
    stuck = run.fraction_with_status(Status.STUCK)
    fuelout = run.fraction_with_status(Status.FUELOUT)
    similarities = [
        o.similarity for o in run.outcomes if o.proved and o.similarity is not None
    ]
    lengths = [
        o.length_ratio
        for o in run.outcomes
        if o.proved and o.length_ratio is not None
    ]
    return OutcomeRow(
        model=run.model,
        proved=proved,
        stuck=stuck,
        fuelout=fuelout,
        similarity=sum(similarities) / len(similarities) if similarities else None,
        length_pct=100.0 * sum(lengths) / len(lengths) if lengths else None,
    )


def table2_rows(
    runs: Sequence[EvalRun],
) -> List[dict]:
    """Pair up vanilla/hinted runs per model, paper Table 2 style."""
    by_key = {(run.model, run.hinted): run for run in runs}
    rows = []
    models = []
    for run in runs:
        if run.model not in models:
            models.append(run.model)
    for model in models:
        vanilla = by_key.get((model, False))
        hinted = by_key.get((model, True))
        if vanilla is None or hinted is None:
            continue
        rows.append(
            OutcomeRow.arrow(outcome_row(vanilla), outcome_row(hinted))
        )
    return rows
