"""Pluggable execution backends for the evaluation engine.

An :class:`Executor` maps a sequence of
:class:`~repro.eval.tasks.TheoremTask` descriptors to
``(task, TaskResult)`` pairs, in task order.  Three backends:

* :class:`SerialExecutor` — in-process, one task at a time (the
  reference semantics; the determinism test pins the others to it);
* :class:`ThreadPoolExecutor` — ``concurrent.futures`` threads.
  Generation, checking, and replay are pure CPython, so threads buy
  overlap mostly when a real API-backed model blocks on I/O — exactly
  the deployment the paper's sweeps were run against;
* :class:`ProcessPoolExecutor` — process workers for CPU-bound
  sweeps.  Each worker rebuilds the :class:`Project` and a
  :class:`Runner` **once per worker** (pool initializer), not per
  task; tasks and results cross the pipe as plain picklable values.

Determinism holds across all three because a task's outcome is a pure
function of its fields (see :mod:`repro.eval.tasks`).

Crash tolerance (process backend)
---------------------------------

A worker death poisons a ``concurrent.futures`` pool: every pending
future raises :class:`BrokenProcessPool`, which blames innocent tasks
that merely shared the pool with the one that killed its worker.  The
process backend therefore recovers in two steps:

1. results that finished *before* the break are kept as-is;
2. every task still unfinished when the pool broke is re-run in a
   **fresh single-worker pool, one task at a time**, up to
   ``task_retries`` attempts.  Isolation makes blame precise: only a
   task that kills its own private worker on every attempt is recorded
   as ``CRASH`` (queries=0); bystanders complete normally and the
   sweep carries on instead of aborting.

Worker startup failures (a bad initializer, an import error in the
worker) are detected eagerly by a probe task submitted before any real
work, and surface as :class:`~repro.errors.ExecutorSetupError` with an
actionable message instead of a hang or an opaque pool error.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent import futures
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Sequence, Tuple

from repro.errors import ExecutorSetupError
from repro.eval.store import OutcomeRecord
from repro.eval.tasks import TheoremTask

__all__ = [
    "TaskResult",
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "make_executor",
    "EXECUTOR_KINDS",
]

EXECUTOR_KINDS = ("serial", "thread", "process")

# Exit code of a fault-injected worker death (distinguishable from a
# genuine segfault's negative signal code in pool diagnostics).
_KILLED_EXIT_CODE = 87


@dataclass(frozen=True)
class TaskResult:
    """One executed task: the deterministic record + a metrics snapshot.

    ``trace`` carries the task's recorded span tree (plain JSON-able
    dicts from :meth:`repro.obs.trace.Tracer.export`) when the sweep
    runs with ``ExperimentConfig.trace`` — picklable, so process-pool
    workers ship their traces back over the pipe for the parent to
    append to the sweep's trace sink.  ``None`` when tracing is off.
    """

    record: OutcomeRecord
    metrics: Optional[dict] = None
    trace: Optional[list] = None


def crash_result(task: TheoremTask, deaths: int) -> TaskResult:
    """The terminal record for a task whose worker died every attempt."""
    return TaskResult(
        record=OutcomeRecord(
            theorem=task.theorem,
            model=task.model,
            hinted=task.hinted,
            status="crash",
            queries=0,
        ),
        metrics={
            "counters": {
                "tasks.crashed": 1,
                "executor.worker_deaths": deaths,
            }
        },
    )


ExecuteFn = Callable[[TheoremTask], TaskResult]
ResultIter = Iterator[Tuple[TheoremTask, TaskResult]]


class Executor:
    """Interface: run tasks, yield (task, result) in task order."""

    kind: str = "abstract"
    jobs: int = 1

    def map(
        self, tasks: Sequence[TheoremTask], execute: ExecuteFn
    ) -> ResultIter:  # pragma: no cover - abstract
        raise NotImplementedError


class SerialExecutor(Executor):
    """In-process, in-order execution (reference backend)."""

    kind = "serial"

    def map(self, tasks, execute) -> ResultIter:
        for task in tasks:
            yield task, execute(task)


class ThreadPoolExecutor(Executor):
    """Thread-pool execution; shares the caller's Runner and project."""

    kind = "thread"

    def __init__(self, jobs: int = 2) -> None:
        self.jobs = max(1, jobs)

    def map(self, tasks, execute) -> ResultIter:
        tasks = list(tasks)
        if not tasks:
            return
        with futures.ThreadPoolExecutor(max_workers=self.jobs) as pool:
            yield from zip(tasks, pool.map(execute, tasks))


# ----------------------------------------------------------------------
# Process backend: module-level worker state so nothing unpicklable
# (Project closures, kernel environments) ever crosses the pipe.
# ----------------------------------------------------------------------

_WORKER_RUNNER = None
_WORKER_PLAN = None


def _init_worker(config, check_proofs: bool) -> None:
    """Pool initializer: build Project + Runner once per worker.

    ``check_proofs`` MUST mirror how the parent loaded its project:
    replaying proofs at load advances the kernel's global fresh-type-
    variable counter, so a differently-loaded worker parses later lemma
    statements with different ``?A<n>`` names.  Those names appear in
    rendered prompts, prompts seed the simulated models, and search
    outcomes diverge from the serial reference.  Splits are re-derived
    from the same seed, so hint sets match the parent exactly.
    """
    global _WORKER_RUNNER, _WORKER_PLAN
    from repro.corpus.loader import load_project
    from repro.eval.runner import Runner
    from repro.testing.faults import FaultPlan

    _WORKER_PLAN = FaultPlan.from_spec(getattr(config, "faults", None))
    if _WORKER_PLAN is not None and _WORKER_PLAN.initfail:
        raise RuntimeError("injected worker initializer failure")
    _WORKER_RUNNER = Runner(load_project(check_proofs=check_proofs), config)


def _probe_worker() -> bool:
    """No-op task proving a worker survived its initializer."""
    return _WORKER_RUNNER is not None


def _execute_in_worker(task: TheoremTask, attempt: int = 0) -> TaskResult:
    if _WORKER_PLAN is not None and _WORKER_PLAN.should_kill_worker(
        task.theorem, attempt
    ):
        # Simulated hard death: no exception, no cleanup — the parent
        # sees only a broken pipe, exactly like an OOM kill or segfault.
        os._exit(_KILLED_EXIT_CODE)
    assert _WORKER_RUNNER is not None, "worker initializer did not run"
    return _WORKER_RUNNER.execute_task(task)


class ProcessPoolExecutor(Executor):
    """Process-pool execution for CPU-bound sweeps.

    ``execute`` is ignored: workers run their own Runner, rebuilt from
    ``config`` by the pool initializer (closures over the parent's
    project are not picklable, and must not be shipped anyway).
    ``check_proofs`` must match the parent project's load mode so the
    worker environment is bit-identical (see :func:`_init_worker`).

    ``task_retries`` bounds how often a task whose worker died is
    re-run in an isolated single-worker pool before it is recorded as
    CRASH; ``heartbeat`` is the maximum seconds to wait for the next
    in-order result before presuming the pool hung (None = forever).
    """

    kind = "process"

    def __init__(
        self,
        config,
        jobs: int = 2,
        check_proofs: bool = True,
        task_retries: Optional[int] = None,
        heartbeat: Optional[float] = None,
    ) -> None:
        self.config = config
        self.jobs = max(1, jobs)
        self.check_proofs = check_proofs
        self.task_retries = (
            task_retries
            if task_retries is not None
            else getattr(config, "task_retries", 2)
        )
        self.heartbeat = (
            heartbeat
            if heartbeat is not None
            else getattr(config, "heartbeat", None)
        )

    # ------------------------------------------------------------------

    def _start_pool(self, workers: int) -> futures.ProcessPoolExecutor:
        """Spin up a pool and prove a worker can initialise.

        Without the probe, an initializer failure surfaces only when
        the first *real* task's future is awaited — or, on some
        platforms, as an indefinite hang while the pool respawns
        crashing workers.  Probing eagerly converts it into an
        immediate, actionable error.
        """
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        pool = futures.ProcessPoolExecutor(
            max_workers=workers,
            mp_context=ctx,
            initializer=_init_worker,
            initargs=(self.config, self.check_proofs),
        )
        probe = pool.submit(_probe_worker)
        try:
            probe.result(timeout=self.heartbeat)
        except BaseException as exc:
            pool.shutdown(wait=False)
            raise ExecutorSetupError(
                "process-pool worker failed to initialise "
                f"({type(exc).__name__}: {exc}); the sweep cannot start. "
                "Re-run with --backend thread (or --backend serial) to "
                "execute in-process, or fix the worker environment."
            ) from exc
        return pool

    def _run_isolated(self, task: TheoremTask) -> TaskResult:
        """Re-run one task alone in fresh single-worker pools.

        Isolation makes crash blame precise: the only process in the
        pool is the one running ``task``, so a break *is* this task's
        fault.  Attempt numbers continue from the pooled attempt 0, so
        first-attempt-only ``crash`` faults stay invisible while
        permanent ``kill`` faults exhaust the budget and yield CRASH.
        """
        deaths = 1  # the pooled attempt that broke (or was abandoned)
        for attempt in range(1, self.task_retries + 1):
            pool = self._start_pool(1)
            try:
                future = pool.submit(_execute_in_worker, task, attempt)
                return future.result(timeout=self.heartbeat)
            except (futures.process.BrokenProcessPool, futures.TimeoutError):
                deaths += 1
            finally:
                pool.shutdown(wait=False)
        return crash_result(task, deaths)

    def map(self, tasks, execute=None) -> ResultIter:
        tasks = list(tasks)
        if not tasks:
            return
        pool = self._start_pool(self.jobs)
        broken = False
        try:
            pending = [
                pool.submit(_execute_in_worker, task, 0) for task in tasks
            ]
            for index, task in enumerate(tasks):
                result: Optional[TaskResult] = None
                future = pending[index]
                if not broken:
                    try:
                        result = future.result(timeout=self.heartbeat)
                    except futures.process.BrokenProcessPool:
                        broken = True
                    except futures.TimeoutError:
                        # No progress within the heartbeat: presume the
                        # pool hung and fall back to isolated retries.
                        broken = True
                        pool.shutdown(wait=False, cancel_futures=True)
                else:
                    # The pool broke earlier; salvage results that
                    # completed before the break, retry the rest.
                    if future.done() and not future.cancelled():
                        try:
                            result = future.result(timeout=0)
                        except Exception:
                            result = None
                if result is None:
                    result = self._run_isolated(task)
                yield task, result
        finally:
            pool.shutdown(wait=False, cancel_futures=True)


def make_executor(
    config,
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
    check_proofs: bool = True,
) -> Executor:
    """Build the backend selected by ``ExperimentConfig`` (or overrides).

    ``check_proofs`` only matters for the process backend: pass the
    load mode of the project the results will be compared against.
    """
    backend = backend if backend is not None else config.executor
    jobs = jobs if jobs is not None else config.jobs
    if backend == "serial":
        return SerialExecutor()
    if backend == "thread":
        return ThreadPoolExecutor(jobs)
    if backend == "process":
        return ProcessPoolExecutor(config, jobs, check_proofs=check_proofs)
    raise ValueError(
        f"unknown executor backend {backend!r}; expected one of {EXECUTOR_KINDS}"
    )
