"""Pluggable execution backends for the evaluation engine.

An :class:`Executor` maps a sequence of
:class:`~repro.eval.tasks.TheoremTask` descriptors to
``(task, TaskResult)`` pairs, in task order.  Three backends:

* :class:`SerialExecutor` — in-process, one task at a time (the
  reference semantics; the determinism test pins the others to it);
* :class:`ThreadPoolExecutor` — ``concurrent.futures`` threads.
  Generation, checking, and replay are pure CPython, so threads buy
  overlap mostly when a real API-backed model blocks on I/O — exactly
  the deployment the paper's sweeps were run against;
* :class:`ProcessPoolExecutor` — process workers for CPU-bound
  sweeps.  Each worker rebuilds the :class:`Project` and a
  :class:`Runner` **once per worker** (pool initializer), not per
  task; tasks and results cross the pipe as plain picklable values.

Determinism holds across all three because a task's outcome is a pure
function of its fields (see :mod:`repro.eval.tasks`).
"""

from __future__ import annotations

import multiprocessing
from concurrent import futures
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence, Tuple

from repro.eval.store import OutcomeRecord
from repro.eval.tasks import TheoremTask

__all__ = [
    "TaskResult",
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "make_executor",
    "EXECUTOR_KINDS",
]

EXECUTOR_KINDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class TaskResult:
    """One executed task: the deterministic record + a metrics snapshot."""

    record: OutcomeRecord
    metrics: Optional[dict] = None


ExecuteFn = Callable[[TheoremTask], TaskResult]
ResultIter = Iterator[Tuple[TheoremTask, TaskResult]]


class Executor:
    """Interface: run tasks, yield (task, result) in task order."""

    kind: str = "abstract"
    jobs: int = 1

    def map(
        self, tasks: Sequence[TheoremTask], execute: ExecuteFn
    ) -> ResultIter:  # pragma: no cover - abstract
        raise NotImplementedError


class SerialExecutor(Executor):
    """In-process, in-order execution (reference backend)."""

    kind = "serial"

    def map(self, tasks, execute) -> ResultIter:
        for task in tasks:
            yield task, execute(task)


class ThreadPoolExecutor(Executor):
    """Thread-pool execution; shares the caller's Runner and project."""

    kind = "thread"

    def __init__(self, jobs: int = 2) -> None:
        self.jobs = max(1, jobs)

    def map(self, tasks, execute) -> ResultIter:
        tasks = list(tasks)
        if not tasks:
            return
        with futures.ThreadPoolExecutor(max_workers=self.jobs) as pool:
            yield from zip(tasks, pool.map(execute, tasks))


# ----------------------------------------------------------------------
# Process backend: module-level worker state so nothing unpicklable
# (Project closures, kernel environments) ever crosses the pipe.
# ----------------------------------------------------------------------

_WORKER_RUNNER = None


def _init_worker(config, check_proofs: bool) -> None:
    """Pool initializer: build Project + Runner once per worker.

    ``check_proofs`` MUST mirror how the parent loaded its project:
    replaying proofs at load advances the kernel's global fresh-type-
    variable counter, so a differently-loaded worker parses later lemma
    statements with different ``?A<n>`` names.  Those names appear in
    rendered prompts, prompts seed the simulated models, and search
    outcomes diverge from the serial reference.  Splits are re-derived
    from the same seed, so hint sets match the parent exactly.
    """
    global _WORKER_RUNNER
    from repro.corpus.loader import load_project
    from repro.eval.runner import Runner

    _WORKER_RUNNER = Runner(load_project(check_proofs=check_proofs), config)


def _execute_in_worker(task: TheoremTask) -> TaskResult:
    assert _WORKER_RUNNER is not None, "worker initializer did not run"
    return _WORKER_RUNNER.execute_task(task)


class ProcessPoolExecutor(Executor):
    """Process-pool execution for CPU-bound sweeps.

    ``execute`` is ignored: workers run their own Runner, rebuilt from
    ``config`` by the pool initializer (closures over the parent's
    project are not picklable, and must not be shipped anyway).
    ``check_proofs`` must match the parent project's load mode so the
    worker environment is bit-identical (see :func:`_init_worker`).
    """

    kind = "process"

    def __init__(self, config, jobs: int = 2, check_proofs: bool = True) -> None:
        self.config = config
        self.jobs = max(1, jobs)
        self.check_proofs = check_proofs

    def map(self, tasks, execute=None) -> ResultIter:
        tasks = list(tasks)
        if not tasks:
            return
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        with futures.ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=ctx,
            initializer=_init_worker,
            initargs=(self.config, self.check_proofs),
        ) as pool:
            yield from zip(tasks, pool.map(_execute_in_worker, tasks))


def make_executor(
    config,
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
    check_proofs: bool = True,
) -> Executor:
    """Build the backend selected by ``ExperimentConfig`` (or overrides).

    ``check_proofs`` only matters for the process backend: pass the
    load mode of the project the results will be compared against.
    """
    backend = backend if backend is not None else config.executor
    jobs = jobs if jobs is not None else config.jobs
    if backend == "serial":
        return SerialExecutor()
    if backend == "thread":
        return ThreadPoolExecutor(jobs)
    if backend == "process":
        return ProcessPoolExecutor(config, jobs, check_proofs=check_proofs)
    raise ValueError(
        f"unknown executor backend {backend!r}; expected one of {EXECUTOR_KINDS}"
    )
