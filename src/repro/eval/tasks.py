"""Immutable task descriptors for the evaluation engine.

A :class:`TheoremTask` names one cell of the paper's sweep grid —
(theorem × model × setting) plus every knob that can change the
search outcome — as a frozen, picklable value.  Its
:meth:`~TheoremTask.cache_key` is a content hash over exactly those
fields, so the run store (:mod:`repro.eval.store`) can recognise an
already-computed cell across processes, interpreter restarts, and
executor backends.

Determinism contract: a task's outcome record depends only on the
task fields and the corpus.  Generation is a pure function of
(model, prompt) — see ``repro.llm.sampling.stable_seed`` — and the
hint split is derived from ``seed``/``hint_fraction``, so serial,
thread, and process executions of the same task produce identical
records (enforced by ``tests/eval/test_executor.py``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields as dataclasses_fields
from typing import List, Optional, Sequence, Tuple

from repro.core import SearchConfig

__all__ = [
    "TheoremTask",
    "sweep_tasks",
    "task_from_json",
    "CACHE_KEY_VERSION",
]

# Bump when the hashed payload changes shape, so stale store entries
# are never mistaken for current ones.
# v2: added theorem_deadline (per-theorem wall-clock budget).
# v3: added repair_rounds (checker-feedback repair cap) and attempt
#     (pass@k sample index).
CACHE_KEY_VERSION = 3


@dataclass(frozen=True)
class TheoremTask:
    """One independent unit of evaluation work."""

    theorem: str
    model: str
    hinted: bool
    # Search hyperparameters (mirror SearchConfig).
    width: int = 8
    fuel: int = 128
    tactic_timeout: float = 5.0
    frontier: str = "best-first"
    dedup_states: bool = True
    max_depth: int = 64
    # Split-defining knobs: the hint set a hinted prompt may draw from
    # is a pure function of (seed, hint_fraction) over the corpus.
    seed: int = 0
    hint_fraction: float = 0.5
    # §4.3 context-selection probe: hand-reduced dependency list.
    reduced_dependencies: Optional[Tuple[str, ...]] = None
    # Per-theorem wall-clock budget (None = unbounded, the paper's
    # setting).  Outcome-relevant — a search can end TIMEOUT — so it
    # participates in the cache key.
    theorem_deadline: Optional[float] = None
    # Repair loop (repro.repair): extra checker-feedback search rounds
    # allowed after a failed initial search.  0 = single-shot (the
    # paper's setting); outcome-relevant (can flip a failure to
    # REPAIRED), so it participates in the cache key.
    repair_rounds: int = 0
    # pass@k sample index: attempt 0 is the base sample; attempt i > 0
    # salts the prompt with a seed derived from the attempt-0 cache key
    # (repro.llm.sampling.attempt_seed), making the k samples distinct
    # yet bit-reproducible.  Outcome-relevant by construction.
    attempt: int = 0

    @staticmethod
    def from_config(
        theorem: str,
        model: str,
        hinted: bool,
        config,
        reduced_dependencies: Optional[Sequence[str]] = None,
    ) -> "TheoremTask":
        """Build a task from an :class:`ExperimentConfig`."""
        return TheoremTask(
            theorem=theorem,
            model=model,
            hinted=hinted,
            width=config.width,
            fuel=config.fuel,
            tactic_timeout=config.tactic_timeout,
            frontier=config.frontier,
            dedup_states=config.dedup_states,
            seed=config.seed,
            hint_fraction=config.hint_fraction,
            reduced_dependencies=(
                tuple(reduced_dependencies)
                if reduced_dependencies is not None
                else None
            ),
            theorem_deadline=getattr(config, "theorem_deadline", None),
            repair_rounds=getattr(config, "repair_rounds", 0),
        )

    def sample_salt(self) -> str:
        """The pass@k sampling salt for this task's attempt index.

        Empty for attempt 0 (prompts — and therefore records — are
        byte-identical to a pre-pass@k single sample).  For attempt
        i > 0: a stable hash of (the attempt-0 cache key, i), so every
        attempt of the same base cell draws an independent sample while
        staying bit-reproducible across backends and processes.
        """
        if self.attempt == 0:
            return ""
        from dataclasses import replace

        from repro.llm.sampling import attempt_seed

        return attempt_seed(
            replace(self, attempt=0).cache_key(), self.attempt
        )

    def search_config(self) -> SearchConfig:
        # Deliberately never sets pipeline_depth: like `trace`, it is
        # an execution knob outside the cache key — the runner applies
        # it from ExperimentConfig on top of this config, and outcome
        # records are invariant to it (tests/eval pin this).
        return SearchConfig(
            width=self.width,
            fuel=self.fuel,
            tactic_timeout=self.tactic_timeout,
            frontier=self.frontier,
            dedup_states=self.dedup_states,
            max_depth=self.max_depth,
            theorem_deadline=self.theorem_deadline,
        )

    def cache_key(self) -> str:
        """Stable content hash of every outcome-relevant field.

        Canonical JSON (sorted keys, fixed separators) hashed with
        SHA-256 — never Python's ``hash()``, which is salted per
        process and would defeat cross-run resume.
        """
        payload = {
            "v": CACHE_KEY_VERSION,
            "theorem": self.theorem,
            "model": self.model,
            "hinted": self.hinted,
            "width": self.width,
            "fuel": self.fuel,
            "tactic_timeout": self.tactic_timeout,
            "frontier": self.frontier,
            "dedup_states": self.dedup_states,
            "max_depth": self.max_depth,
            "seed": self.seed,
            "hint_fraction": self.hint_fraction,
            "reduced_dependencies": (
                list(self.reduced_dependencies)
                if self.reduced_dependencies is not None
                else None
            ),
            "theorem_deadline": self.theorem_deadline,
            "repair_rounds": self.repair_rounds,
            "attempt": self.attempt,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def task_from_json(obj: dict) -> TheoremTask:
    """Build a task from an untrusted JSON object (the prover service's
    ``POST /prove`` body).

    Only known task fields are accepted — an unknown key is a client
    error, surfaced as ``ValueError`` so the server can answer 400
    instead of silently ignoring a typo'd search knob (which would
    return a differently-keyed cell than the client asked for).
    ``theorem`` and ``model`` are required; everything else defaults
    exactly as :class:`TheoremTask` does, so a minimal request hits the
    same cache key as a default sweep cell.
    """
    if not isinstance(obj, dict):
        raise ValueError("request body must be a JSON object")
    fields = {f.name for f in dataclasses_fields(TheoremTask)}
    unknown = sorted(set(obj) - fields)
    if unknown:
        raise ValueError(f"unknown task field(s): {', '.join(unknown)}")
    missing = [name for name in ("theorem", "model") if name not in obj]
    if missing:
        raise ValueError(f"missing required field(s): {', '.join(missing)}")
    kwargs = dict(obj)
    kwargs.setdefault("hinted", False)
    if kwargs.get("reduced_dependencies") is not None:
        deps = kwargs["reduced_dependencies"]
        if not isinstance(deps, (list, tuple)) or not all(
            isinstance(d, str) for d in deps
        ):
            raise ValueError("reduced_dependencies must be a list of names")
        kwargs["reduced_dependencies"] = tuple(deps)
    try:
        task = TheoremTask(**kwargs)
    except TypeError as exc:
        raise ValueError(str(exc)) from exc
    # Cheap shape checks so a mistyped knob fails the request, not the
    # search worker (json has no int/float distinction worth fighting;
    # bools are checked exactly).
    for name, kind in (
        ("theorem", str),
        ("model", str),
        ("hinted", bool),
        ("frontier", str),
        ("dedup_states", bool),
    ):
        if not isinstance(getattr(task, name), kind):
            raise ValueError(f"field {name!r} must be {kind.__name__}")
    for name in ("width", "fuel", "max_depth", "seed", "repair_rounds",
                 "attempt"):
        if not isinstance(getattr(task, name), int) or isinstance(
            getattr(task, name), bool
        ):
            raise ValueError(f"field {name!r} must be an integer")
    for name in ("tactic_timeout", "hint_fraction"):
        if not isinstance(getattr(task, name), (int, float)):
            raise ValueError(f"field {name!r} must be a number")
    if task.theorem_deadline is not None and not isinstance(
        task.theorem_deadline, (int, float)
    ):
        raise ValueError("field 'theorem_deadline' must be a number or null")
    if task.repair_rounds < 0:
        raise ValueError("field 'repair_rounds' must be >= 0")
    if task.attempt < 0:
        raise ValueError("field 'attempt' must be >= 0")
    return task


def sweep_tasks(
    theorems: Sequence, model: str, hinted: bool, config
) -> List[TheoremTask]:
    """The task list for one (model, setting) sweep.

    ``theorems`` may be :class:`~repro.corpus.model.Theorem` objects
    or bare names.
    """
    names = [t if isinstance(t, str) else t.name for t in theorems]
    return [
        TheoremTask.from_config(name, model, hinted, config) for name in names
    ]
