"""Append-only JSONL run store: resumable, incremental sweeps.

Each line is one completed evaluation cell::

    {"key": <task cache key>, "task": {…}, "record": {…}}

The store is keyed by :meth:`TheoremTask.cache_key`, so a re-run of
the same sweep (same corpus knobs, same search hyperparameters) hits
the store and performs zero new searches; ``--fresh`` bypasses the
lookup but still appends, so the newest record for a key wins on the
next load.

Loading tolerates a torn final line — the signature of a run killed
mid-append — making kill/rerun resume safe (see
``tests/eval/test_store.py``).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional

__all__ = ["OutcomeRecord", "RunStore"]


@dataclass(frozen=True)
class OutcomeRecord:
    """The serialisable result of one task.

    This is :class:`~repro.eval.runner.TheoremOutcome` minus the live
    :class:`~repro.corpus.model.Theorem` object (records carry the
    theorem *name*; the runner rehydrates against its project) and
    with ``status`` as the plain enum value string.  Every field is
    deterministic — no wall-clock — so records compare equal across
    serial, thread, and process backends.
    """

    theorem: str
    model: str
    hinted: bool
    status: str
    queries: int
    generated_proof: str = ""
    revalidated: bool = False
    similarity: Optional[float] = None
    length_ratio: Optional[float] = None

    def to_json(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_json(obj: dict) -> "OutcomeRecord":
        return OutcomeRecord(**obj)


class RunStore:
    """Append-only JSONL persistence for outcome records."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._records: Dict[str, OutcomeRecord] = {}
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    # Torn tail write from a killed run: skip, the
                    # cell simply re-executes on resume.
                    continue
                key = obj.get("key")
                record = obj.get("record")
                if not key or not isinstance(record, dict):
                    continue
                try:
                    self._records[key] = OutcomeRecord.from_json(record)
                except TypeError:
                    # Schema drift (e.g. older CACHE_KEY_VERSION line
                    # with different record fields): ignore.
                    continue

    # ------------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[str]:
        return iter(self._records)

    def get(self, key: str) -> OutcomeRecord:
        return self._records[key]

    def put(self, task, record: OutcomeRecord) -> None:
        """Persist one completed cell (append + in-memory index)."""
        key = task.cache_key()
        line = json.dumps(
            {"key": key, "task": asdict(task), "record": record.to_json()},
            sort_keys=True,
            separators=(",", ":"),
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
        self._records[key] = record

    def metrics_path(self) -> Path:
        """Where the sweep's instrumentation JSON lives (sibling file)."""
        return self.path.with_name(self.path.stem + ".metrics.json")
