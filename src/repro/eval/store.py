"""Append-only JSONL run store: resumable, incremental sweeps.

Each line is one completed evaluation cell::

    {"key": <task cache key>, "record": {…}, "sum": <checksum>, "task": {…}}

The store is keyed by :meth:`TheoremTask.cache_key`, so a re-run of
the same sweep (same corpus knobs, same search hyperparameters) hits
the store and performs zero new searches; ``--fresh`` bypasses the
lookup but still appends, so the newest record for a key wins on the
next load.

Integrity: ``sum`` is a truncated SHA-256 over the line's canonical
payload, written at append time.  A crash mid-append, a truncated
disk, or a hand-edited line shows up as a checksum mismatch (or as
unparseable JSON) on the next load; such lines are **quarantined** —
moved to a ``<store>.quarantine`` sibling file for post-mortems — and
the store file is atomically rewritten without them, so the damaged
cells simply re-execute on resume instead of resurfacing as corrupt
results.  Lines written by older versions carry no ``sum`` and load
unverified (see ``tests/eval/test_store.py``).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional

__all__ = [
    "OutcomeRecord",
    "RunStore",
    "checksum_payload",
    "quarantine_lines",
]


@dataclass(frozen=True)
class OutcomeRecord:
    """The serialisable result of one task.

    This is :class:`~repro.eval.runner.TheoremOutcome` minus the live
    :class:`~repro.corpus.model.Theorem` object (records carry the
    theorem *name*; the runner rehydrates against its project) and
    with ``status`` as the plain enum value string.  Every field is
    deterministic — no wall-clock — so records compare equal across
    serial, thread, and process backends.
    """

    theorem: str
    model: str
    hinted: bool
    status: str
    queries: int
    generated_proof: str = ""
    revalidated: bool = False
    similarity: Optional[float] = None
    length_ratio: Optional[float] = None
    # Search attempts consumed: 1 single-shot; 1 + rounds run when the
    # repair loop engaged (repro.repair).
    attempts: int = 1
    # Serialized FailureContext of the last failed attempt (None when
    # the search proved/repaired the theorem, or never saw a
    # rejection).  Deterministic: tactic text, checker message, and
    # rendered goal are all pure functions of the task.
    failure: Optional[dict] = None

    def to_json(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_json(obj: dict) -> "OutcomeRecord":
        return OutcomeRecord(**obj)


def checksum_payload(payload: dict) -> str:
    """Truncated SHA-256 of the canonical JSON of ``payload``.

    16 hex chars (64 bits) — plenty against accidental corruption,
    which is the threat model; this is not a cryptographic seal.
    The service's job journal (:mod:`repro.service.journal`) writes
    the same ``{"...": ..., "sum": <checksum>}`` line format.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


_checksum = checksum_payload  # internal alias


def quarantine_lines(
    path: Path, good_lines: List[str], bad_lines: List[str]
) -> Path:
    """Move corrupt lines to the ``.quarantine`` sibling of ``path``
    and atomically rewrite ``path`` with only the good ones.

    The rewrite goes through a temp file + ``os.replace`` so a crash
    mid-quarantine leaves either the old file (re-quarantined next
    load) or the clean new one — never a half-written file.  Returns
    the quarantine path.
    """
    quarantine = path.with_name(path.name + ".quarantine")
    with quarantine.open("a", encoding="utf-8") as handle:
        for line in bad_lines:
            handle.write(line + "\n")
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        for line in good_lines:
            handle.write(line + "\n")
    os.replace(tmp, path)
    return quarantine


class RunStore:
    """Append-only JSONL persistence for outcome records."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._records: Dict[str, OutcomeRecord] = {}
        # Serialises appends: the prover service's scheduler workers
        # put() concurrently, and an interleaved write would tear lines.
        self._write_lock = threading.Lock()
        #: Lines rejected on the last load (torn writes, checksum
        #: mismatches, schema garbage) — moved to :meth:`quarantine_path`.
        self.quarantined = 0
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        good_lines: List[str] = []
        bad_lines: List[str] = []
        with self.path.open("r", encoding="utf-8") as handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                if self._ingest(line):
                    good_lines.append(line)
                else:
                    bad_lines.append(line)
        if bad_lines:
            self._quarantine(good_lines, bad_lines)

    def _ingest(self, line: str) -> bool:
        """Index one stored line; False = corrupt, quarantine it."""
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            # Torn tail write from a killed run, or disk damage.
            return False
        if not isinstance(obj, dict):
            return False
        stored_sum = obj.pop("sum", None)
        if stored_sum is not None and stored_sum != _checksum(obj):
            # The line parses but its payload does not match the
            # checksum written at append time: silent corruption.
            return False
        key = obj.get("key")
        record = obj.get("record")
        if not key or not isinstance(record, dict):
            return False
        try:
            self._records[key] = OutcomeRecord.from_json(record)
        except TypeError:
            # Schema drift (e.g. older CACHE_KEY_VERSION line with
            # different record fields): ignore but keep the line — it
            # is internally consistent, just from another era.
            return True
        return True

    def _quarantine(self, good_lines: List[str], bad_lines: List[str]) -> None:
        """Move corrupt lines aside and rewrite the store without them."""
        self.quarantined = len(bad_lines)
        quarantine_lines(self.path, good_lines, bad_lines)

    # ------------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[str]:
        return iter(self._records)

    def get(self, key: str) -> OutcomeRecord:
        return self._records[key]

    def put(self, task, record: OutcomeRecord) -> None:
        """Persist one completed cell (append + in-memory index)."""
        key = task.cache_key()
        payload = {
            "key": key,
            "task": asdict(task),
            "record": record.to_json(),
        }
        payload["sum"] = _checksum(payload)
        line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        with self._write_lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
            self._records[key] = record

    def metrics_path(self) -> Path:
        """Where the sweep's instrumentation JSON lives (sibling file)."""
        return self.path.with_name(self.path.stem + ".metrics.json")

    def quarantine_path(self) -> Path:
        """Where corrupt lines are moved on load (sibling file)."""
        return self.path.with_name(self.path.name + ".quarantine")
