"""Figure 2: case studies comparing human and generated proofs.

The paper's three examples live verbatim-in-spirit in the corpus:

* Case A — ``incl_tl_inv`` (ListUtils): the human proof inducts
  unnecessarily.
* Case B — ``ndata_log_padded_log`` (PaddedLog): the human proof
  expands many rewrites.
* Case C — ``tree_name_distinct_head`` (DirTree): the human proof
  re-applies lemmas redundantly.

:func:`run_case_studies` searches for each with a hinted strong model
and reports both proofs with token counts, machine-checking the
generated one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.corpus.tokenizer import count_tokens
from repro.eval.runner import Runner
from repro.eval.similarity import normalized_similarity

__all__ = ["CaseStudy", "CASE_LEMMAS", "run_case_studies", "render_case"]

# (lemma, model) pairs as in Figure 2.
CASE_LEMMAS = (
    ("incl_tl_inv", "gpt-4o"),
    ("ndata_log_padded_log", "gpt-4o"),
    ("tree_name_distinct_head", "gemini-1.5-pro"),
)

# Curated dependency sets (the paper's §4.3 device: "we examined its
# dependencies and included only the necessary definitions, lemmas,
# and tactics in the prompt").  Figure 2's showcased generations come
# from the appropriate-context regime.
CASE_DEPENDENCIES = {
    "incl_tl_inv": [
        "In", "incl", "incl_nil", "incl_cons", "incl_cons_inv",
        "incl_tl", "in_eq", "in_cons",
    ],
    "ndata_log_padded_log": [
        "nonzero_addrs", "ndata_log", "padded_log", "pad2", "map_app",
        "repeat_map", "nonzero_addrs_app", "nonzero_addrs_repeat_0",
        "nonzero_addrs_app_zeros", "plus_0_r", "fst_pair",
    ],
    "tree_name_distinct_head": [
        "dirtree", "tree_names_distinct", "Forall", "map_cons",
        "Forall_inv", "NoDup_cons_inv",
    ],
}


@dataclass
class CaseStudy:
    lemma: str
    model: str
    statement: str
    human_proof: str
    human_tokens: int
    generated_proof: Optional[str]
    generated_tokens: Optional[int]
    similarity: Optional[float]
    proved: bool


def run_case_studies(runner: Runner) -> List[CaseStudy]:
    """Search the three lemmas with the hinted models at full attention.

    The paper presents Figure 2 as *selected successful* generations;
    to reproduce the qualitative comparison we run the search with the
    model's lucidity pinned to 1.0 (its best-case behaviour) and with
    the §4.3 curated context for each lemma, which is the regime the
    published examples came from.  Coverage numbers elsewhere never
    use these overrides.
    """
    import dataclasses

    from repro.core import SearchConfig
    from repro.llm.models import SimulatedModel, get_model

    studies: List[CaseStudy] = []
    for lemma_name, model_name in CASE_LEMMAS:
        theorem = runner.project.theorem(lemma_name)
        base = get_model(model_name).profile
        focused = SimulatedModel(
            dataclasses.replace(
                base, lucidity=1.0, hallucination_rate=0.05, temperature=0.5
            )
        )
        outcome = runner.run_theorem(
            theorem,
            model_name,
            hinted=True,
            model_override=focused,
            reduced_dependencies=CASE_DEPENDENCIES[lemma_name],
            search_config=SearchConfig(width=16, fuel=256),
        )
        generated = outcome.generated_proof if outcome.proved else None
        studies.append(
            CaseStudy(
                lemma=lemma_name,
                model=model_name,
                statement=theorem.statement_text,
                human_proof=theorem.proof_text,
                human_tokens=theorem.proof_tokens,
                generated_proof=generated,
                generated_tokens=count_tokens(generated) if generated else None,
                similarity=(
                    normalized_similarity(generated, theorem.proof_text)
                    if generated
                    else None
                ),
                proved=outcome.proved,
            )
        )
    return studies


def render_case(study: CaseStudy) -> str:
    lines = [
        f"=== {study.lemma}  [{study.model}] ===",
        f"Lemma {study.lemma} : {study.statement}.",
        "",
        f"-- human proof ({study.human_tokens} tokens) --",
        study.human_proof,
        "",
    ]
    if study.generated_proof:
        lines += [
            f"-- generated proof ({study.generated_tokens} tokens, "
            f"similarity {study.similarity:.3f}) --",
            study.generated_proof,
        ]
    else:
        lines.append("-- generated proof: (search failed) --")
    return "\n".join(lines)
