"""The experiment driver.

Runs best-first search over (model × setting × theorem) cells and
collects :class:`TheoremOutcome` records carrying everything the
paper's tables and figures need: outcome status, the generated proof,
its machine revalidation, similarity to the human proof, and length
ratio.

Every *proved* outcome is replayed from scratch through the script
runner before it counts — a proof is never trusted on the search
engine's say-so.

Structurally this is the top of a layered execution engine:

* :mod:`repro.eval.tasks` — immutable, content-hashed task descriptors;
* :mod:`repro.eval.executor` — serial / thread / process backends;
* :mod:`repro.eval.store` — append-only JSONL run store (resume);
* :mod:`repro.eval.instrumentation` — per-stage timing + counters.

:meth:`Runner.run` plans a sweep as tasks, skips cells the run store
already holds, dispatches the rest to the configured executor, and
rehydrates the resulting records into :class:`TheoremOutcome`\\ s.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.corpus.loader import Project, load_project
from repro.corpus.model import Theorem
from repro.corpus.splits import Splits, make_splits
from repro.corpus.tokenizer import count_tokens
from repro.core import BestFirstSearch, SearchConfig, Status
from repro.errors import ModelExhaustedError, ReproError
from repro.eval.config import ExperimentConfig
from repro.eval.executor import Executor, TaskResult, make_executor
from repro.eval.instrumentation import Metrics
from repro.eval.similarity import normalized_similarity
from repro.eval.store import OutcomeRecord, RunStore
from repro.eval.tasks import TheoremTask, sweep_tasks
from repro.llm import get_model
from repro.llm.resilient import ResilientGenerator
from repro.obs.trace import NULL_TRACER, Tracer
from repro.prompting import PromptBuilder
from repro.repair.engine import RepairEngine
from repro.serapi import ProofChecker
from repro.tactics.script import run_script
from repro.testing.faults import FaultPlan, FaultyGenerator

__all__ = [
    "TheoremOutcome",
    "EvalRun",
    "Runner",
    "record_from_outcome",
]


@dataclass
class TheoremOutcome:
    theorem: Theorem
    model: str
    hinted: bool
    status: Status
    queries: int
    generated_proof: str = ""
    revalidated: bool = False
    similarity: Optional[float] = None
    length_ratio: Optional[float] = None  # generated/human tokens
    # Search attempts consumed (1 + repair rounds run).
    attempts: int = 1
    # FailureContext.to_json() of a non-proved search, if captured.
    failure: Optional[dict] = None

    @property
    def proved(self) -> bool:
        # REPAIRED is a proof like any other — it passed the same
        # Qed replay; the status only records that feedback was needed.
        return (
            self.status in (Status.PROVED, Status.REPAIRED)
            and self.revalidated
        )


def record_from_outcome(outcome: TheoremOutcome) -> OutcomeRecord:
    """Flatten an outcome to its serialisable, deterministic record."""
    return OutcomeRecord(
        theorem=outcome.theorem.name,
        model=outcome.model,
        hinted=outcome.hinted,
        status=outcome.status.value,
        queries=outcome.queries,
        generated_proof=outcome.generated_proof,
        revalidated=outcome.revalidated,
        similarity=outcome.similarity,
        length_ratio=outcome.length_ratio,
        attempts=outcome.attempts,
        failure=outcome.failure,
    )


@dataclass
class EvalRun:
    """All outcomes of one (model, setting) sweep."""

    model: str
    hinted: bool
    outcomes: List[TheoremOutcome] = field(default_factory=list)

    def proved_fraction(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.proved for o in self.outcomes) / len(self.outcomes)

    def fraction_with_status(self, status: Status) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.status is status for o in self.outcomes) / len(
            self.outcomes
        )


class Runner:
    """Evaluation entry point."""

    def __init__(
        self,
        project: Optional[Project] = None,
        config: Optional[ExperimentConfig] = None,
    ) -> None:
        self.project = project or load_project()
        self.config = config or ExperimentConfig()
        self.splits: Splits = make_splits(
            self.project,
            hint_fraction=self.config.hint_fraction,
            large_fraction=self.config.large_fraction,
            seed=self.config.seed,
        )
        self.metrics = Metrics()
        # Chaos plan for this sweep (None in the common fault-free
        # case).  Parsed once here so a bad spec fails fast, before
        # any search runs.
        self.fault_plan: Optional[FaultPlan] = FaultPlan.from_spec(
            getattr(self.config, "faults", None)
        )

    # ------------------------------------------------------------------
    # Sweep planning
    # ------------------------------------------------------------------

    def theorems_for(self, model_name: str) -> List[Theorem]:
        from repro.eval.config import LARGE_MODELS

        theorems = (
            self.splits.test_large
            if model_name in LARGE_MODELS
            else self.splits.test
        )
        if self.config.max_theorems is not None:
            theorems = theorems[: self.config.max_theorems]
        return theorems

    # ------------------------------------------------------------------
    # Single-cell execution
    # ------------------------------------------------------------------

    def _wrap_model(
        self,
        model,
        theorem_name: str,
        hinted: bool,
        metrics: Optional[Metrics],
        pipeline_depth: int = 0,
    ):
        """Apply the fault-tolerance stack to a raw generator.

        Inner to outer: fault injection (chaos sweeps only), then — at
        ``pipeline_depth >= 2`` — the intra-search micro-batcher, then
        the resilient retry/breaker/fallback wrapper.  Injected faults
        hit the wrapper exactly like a flaky real endpoint would, and
        the batcher sits *below* the resilient layer for the same
        reason the service stacks that way: a retry re-enqueues one
        element, not a whole batch.  The wrapper is built fresh **per
        task**, so breaker state can never leak between tasks and
        records stay order-independent.

        Returns ``(generator, batcher)``; ``batcher`` is the owned
        intra-search :class:`BatchingGenerator` (or None) that the
        caller must ``close()`` when the task finishes.
        """
        plan = self.fault_plan
        if plan is not None and plan.model_faults_active():
            model = FaultyGenerator(
                model,
                plan,
                context=f"{theorem_name}|{model.name}|{int(hinted)}",
            )
        batcher = None
        if pipeline_depth >= 2:
            # Imported here: repro.service.server imports this module
            # (the composition root), so a top-level import would be
            # circular through the service package.
            from repro.service.batching import BatchingGenerator

            batcher = BatchingGenerator.for_search(
                model, pipeline_depth, metrics=metrics
            )
            model = batcher
        if getattr(self.config, "resilient", True):
            fallback_name = getattr(self.config, "fallback_model", None)
            model = ResilientGenerator(
                model,
                fallback=(
                    get_model(fallback_name) if fallback_name else None
                ),
                metrics=metrics,
            )
        return model, batcher

    def run_theorem(
        self,
        theorem: Theorem,
        model_name: str,
        hinted: bool,
        reduced_dependencies: Optional[Sequence[str]] = None,
        model_override=None,
        search_config=None,
        metrics: Optional[Metrics] = None,
        tracer=None,
        repair_rounds: int = 0,
        attempt_salt: str = "",
    ) -> TheoremOutcome:
        model = model_override if model_override is not None else get_model(
            model_name
        )
        # The execution knob rides in from ExperimentConfig, never from
        # the task (it is outside the cache key — see eval.config).
        pipeline_depth = getattr(self.config, "pipeline_depth", 0)
        model, batcher = self._wrap_model(
            model, theorem.name, hinted, metrics, pipeline_depth
        )
        search_config = search_config or SearchConfig(
            width=self.config.width,
            fuel=self.config.fuel,
            tactic_timeout=self.config.tactic_timeout,
            frontier=self.config.frontier,
            dedup_states=self.config.dedup_states,
            theorem_deadline=getattr(self.config, "theorem_deadline", None),
        )
        if pipeline_depth >= 1 and search_config.pipeline_depth == 0:
            search_config = replace(
                search_config, pipeline_depth=pipeline_depth
            )
        tracer = tracer if tracer is not None else NULL_TRACER
        env = self.project.env_for(theorem)
        checker = ProofChecker(
            env,
            tactic_timeout=search_config.tactic_timeout,
            metrics=metrics,
            tracer=tracer,
        )
        builder = PromptBuilder(
            self.project,
            theorem,
            hint_names=self.splits.hint_names if hinted else None,
            window_tokens=model.context_window,
            reduced_dependencies=reduced_dependencies,
            attempt_salt=attempt_salt,
        )
        search = BestFirstSearch(
            checker, model, search_config, metrics=metrics, tracer=tracer
        )
        try:
            if repair_rounds > 0:
                engine = RepairEngine(
                    search,
                    builder,
                    repair_rounds,
                    metrics=metrics,
                    tracer=tracer,
                )
                result = engine.prove(theorem.name, theorem.statement)
            else:
                result = search.prove(
                    theorem.name, theorem.statement, builder.build
                )
        finally:
            if batcher is not None:
                batcher.close()
        outcome = TheoremOutcome(
            theorem=theorem,
            model=model_name,
            hinted=hinted,
            status=result.status,
            queries=result.stats.queries,
            attempts=result.attempts,
            failure=(
                result.failure.to_json()
                if result.failure is not None
                else None
            ),
        )
        if result.proved:
            proof_text = result.proof_text()
            outcome.generated_proof = proof_text
            started = time.monotonic()
            with tracer.span("qed_replay") as replay_span:
                try:
                    # Qed: replay the full script from scratch.
                    run_script(env, theorem.statement, proof_text)
                    outcome.revalidated = True
                except ReproError:
                    outcome.revalidated = False
                if tracer.enabled:
                    replay_span.set(revalidated=outcome.revalidated)
            if metrics is not None:
                metrics.add_time("qed_replay", time.monotonic() - started)
            outcome.similarity = normalized_similarity(
                proof_text, theorem.proof_text
            )
            human_tokens = max(1, count_tokens(theorem.proof_text))
            outcome.length_ratio = count_tokens(proof_text) / human_tokens
        return outcome

    def execute_task(
        self, task: TheoremTask, model_override=None, tracer=None
    ) -> TaskResult:
        """Run one task and return its (record, metrics) pair.

        This is the unit every executor backend dispatches; process
        workers call it on their own Runner, so it must only touch
        picklable inputs/outputs.  ``model_override`` substitutes the
        raw generator (the prover service passes its shared per-model
        micro-batcher); the fault-tolerance stack still wraps it per
        task.

        Tracing: an explicit ``tracer`` (the prover service passes its
        per-job one) is used as-is; otherwise, when
        ``ExperimentConfig.trace`` is set, the task records into a
        fresh tracer whose spans ride back on ``TaskResult.trace`` —
        this is how process workers ship trace data to the sweep
        parent.  With neither, the no-op tracer runs and the result is
        byte-identical to an untraced execution.

        Kernel memo caches are cleared on entry (bounding their
        lifetime to one theorem search) and their hit/miss deltas ride
        back on the task metrics as ``kernel.cache.<name>.*`` counters
        (and, when tracing, as ``kernel_cache`` attributes on the task
        span).  The search itself runs under a cache *pin*, so a
        concurrent task's per-entry clear is deferred instead of
        evicting this task's live interned terms (see
        :mod:`repro.kernel.cache`).
        """
        from repro.kernel import cache as kernel_cache

        own_tracer: Optional[Tracer] = None
        if tracer is None and getattr(self.config, "trace", False):
            own_tracer = Tracer(trace_id=task.cache_key()[:16])
            tracer = own_tracer
        tr = tracer if tracer is not None else NULL_TRACER

        kernel_cache.clear_caches()
        with kernel_cache.pinned():
            cache_before = kernel_cache.cache_stats()
            metrics = Metrics()
            with tr.span(
                "task",
                theorem=task.theorem,
                model=task.model,
                hinted=task.hinted,
            ) as task_span:
                try:
                    outcome = self.run_theorem(
                        self.project.theorem(task.theorem),
                        task.model,
                        task.hinted,
                        reduced_dependencies=task.reduced_dependencies,
                        model_override=model_override,
                        search_config=task.search_config(),
                        metrics=metrics,
                        tracer=tracer,
                        repair_rounds=task.repair_rounds,
                        attempt_salt=task.sample_salt(),
                    )
                    record = record_from_outcome(outcome)
                except ModelExhaustedError:
                    # The task's model failed permanently (retries
                    # exhausted or breaker open, no fallback).  Record
                    # the loss as CRASH so the sweep completes instead
                    # of aborting; queries=0 marks the cell as never
                    # meaningfully attempted.
                    metrics.incr("tasks.crashed")
                    record = OutcomeRecord(
                        theorem=task.theorem,
                        model=task.model,
                        hinted=task.hinted,
                        status=Status.CRASH.value,
                        queries=0,
                    )
                delta = kernel_cache.stats_delta(cache_before)
                if tr.enabled:
                    task_span.set(
                        status=record.status,
                        queries=record.queries,
                        kernel_cache=delta,
                    )
            for name, cell in delta.items():
                metrics.incr(f"kernel.cache.{name}.hits", cell["hits"])
                metrics.incr(f"kernel.cache.{name}.misses", cell["misses"])
        return TaskResult(
            record=record,
            metrics=metrics.snapshot(),
            trace=own_tracer.export() if own_tracer is not None else None,
        )

    def outcome_from_record(self, record: OutcomeRecord) -> TheoremOutcome:
        """Rehydrate a stored record against this runner's project."""
        return TheoremOutcome(
            theorem=self.project.theorem(record.theorem),
            model=record.model,
            hinted=record.hinted,
            status=Status(record.status),
            queries=record.queries,
            generated_proof=record.generated_proof,
            revalidated=record.revalidated,
            similarity=record.similarity,
            length_ratio=record.length_ratio,
            attempts=record.attempts,
            failure=record.failure,
        )

    # ------------------------------------------------------------------
    # Sweep execution
    # ------------------------------------------------------------------

    def run_tasks(
        self,
        tasks: Sequence[TheoremTask],
        executor: Optional[Executor] = None,
        store: Optional[RunStore] = None,
        fresh: bool = False,
        trace_sink=None,
    ) -> List[OutcomeRecord]:
        """Execute tasks (store-skipping completed ones), in task order.

        Already-stored cells are served from ``store`` without any
        search; ``fresh=True`` bypasses the lookup (re-executing and
        re-appending, so the newest record wins on the next load).

        ``trace_sink`` is an optional :class:`repro.obs.trace.JsonlSink`
        (or anything with ``write(spans)``): when the sweep runs with
        ``ExperimentConfig.trace``, each executed task's span tree is
        appended as it arrives — including spans shipped back from
        process workers.  Store contents are unaffected either way.
        """
        results: Dict[str, OutcomeRecord] = {}
        pending: List[TheoremTask] = []
        for task in tasks:
            key = task.cache_key()
            self.metrics.incr("tasks.total")
            if store is not None and not fresh and key in store:
                results[key] = store.get(key)
                self.metrics.incr("tasks.cached")
            else:
                pending.append(task)
        if pending:
            # Process workers must reload the project exactly as the
            # parent did — the load mode changes fresh-tvar numbering
            # in lemma statements, and with it prompts and outcomes.
            backend = executor or make_executor(
                self.config,
                check_proofs=getattr(self.project, "check_proofs", True),
            )
            for task, task_result in backend.map(pending, self.execute_task):
                self.metrics.incr("tasks.executed")
                self.metrics.merge(task_result.metrics)
                if trace_sink is not None and task_result.trace:
                    trace_sink.write(task_result.trace)
                if store is not None:
                    store.put(task, task_result.record)
                results[task.cache_key()] = task_result.record
        return [results[task.cache_key()] for task in tasks]

    def run(
        self,
        model_name: str,
        hinted: bool,
        theorems: Optional[Sequence[Theorem]] = None,
        executor: Optional[Executor] = None,
        store: Optional[RunStore] = None,
        fresh: bool = False,
        trace_sink=None,
    ) -> EvalRun:
        chosen = list(theorems) if theorems is not None else self.theorems_for(
            model_name
        )
        tasks = sweep_tasks(chosen, model_name, hinted, self.config)
        records = self.run_tasks(
            tasks,
            executor=executor,
            store=store,
            fresh=fresh,
            trace_sink=trace_sink,
        )
        return EvalRun(
            model=model_name,
            hinted=hinted,
            outcomes=[self.outcome_from_record(r) for r in records],
        )

    # ------------------------------------------------------------------
    # §4.3 probes
    # ------------------------------------------------------------------

    def run_reduced_context(
        self,
        theorem: Theorem,
        model_name: str,
        dependencies: Sequence[str],
    ) -> TheoremOutcome:
        """Hand-reduced-context rerun of a failed theorem (§4.3)."""
        return self.run_theorem(
            theorem, model_name, hinted=False, reduced_dependencies=dependencies
        )

    def run_whole_proof(
        self, theorem: Theorem, attempts: int = 8
    ) -> Dict[str, object]:
        """o1-style whole-proof probe (§4.3): no search, one-shot scripts."""
        from repro.kernel.goals import initial_state
        from repro.llm.wholeproof import WholeProofModel

        model = WholeProofModel()
        env = self.project.env_for(theorem)
        builder = PromptBuilder(self.project, theorem)
        state = initial_state(env, theorem.statement)
        prompt = builder.build(state, [])
        scripts = model.generate(prompt, attempts)
        successes = 0
        for script in scripts:
            try:
                run_script(env, theorem.statement, script)
                successes += 1
            except ReproError:
                pass
        return {
            "theorem": theorem.name,
            "attempts": attempts,
            "successes": successes,
            "scripts": scripts,
        }
