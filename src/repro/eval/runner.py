"""The experiment driver.

Runs best-first search over (model × setting × theorem) cells and
collects :class:`TheoremOutcome` records carrying everything the
paper's tables and figures need: outcome status, the generated proof,
its machine revalidation, similarity to the human proof, and length
ratio.

Every *proved* outcome is replayed from scratch through the script
runner before it counts — a proof is never trusted on the search
engine's say-so.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.corpus.loader import Project, load_project
from repro.corpus.model import Theorem
from repro.corpus.splits import Splits, make_splits
from repro.corpus.tokenizer import count_tokens
from repro.core import BestFirstSearch, SearchConfig, Status
from repro.errors import ReproError
from repro.eval.config import ExperimentConfig
from repro.eval.similarity import normalized_similarity
from repro.llm import get_model
from repro.prompting import PromptBuilder
from repro.serapi import ProofChecker
from repro.tactics.script import run_script

__all__ = ["TheoremOutcome", "EvalRun", "Runner"]


@dataclass
class TheoremOutcome:
    theorem: Theorem
    model: str
    hinted: bool
    status: Status
    queries: int
    generated_proof: str = ""
    revalidated: bool = False
    similarity: Optional[float] = None
    length_ratio: Optional[float] = None  # generated/human tokens

    @property
    def proved(self) -> bool:
        return self.status is Status.PROVED and self.revalidated


@dataclass
class EvalRun:
    """All outcomes of one (model, setting) sweep."""

    model: str
    hinted: bool
    outcomes: List[TheoremOutcome] = field(default_factory=list)

    def proved_fraction(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.proved for o in self.outcomes) / len(self.outcomes)

    def fraction_with_status(self, status: Status) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.status is status for o in self.outcomes) / len(
            self.outcomes
        )


class Runner:
    """Evaluation entry point."""

    def __init__(
        self,
        project: Optional[Project] = None,
        config: Optional[ExperimentConfig] = None,
    ) -> None:
        self.project = project or load_project()
        self.config = config or ExperimentConfig()
        self.splits: Splits = make_splits(
            self.project,
            hint_fraction=self.config.hint_fraction,
            large_fraction=self.config.large_fraction,
            seed=self.config.seed,
        )

    # ------------------------------------------------------------------

    def theorems_for(self, model_name: str) -> List[Theorem]:
        from repro.eval.config import LARGE_MODELS

        theorems = (
            self.splits.test_large
            if model_name in LARGE_MODELS
            else self.splits.test
        )
        if self.config.max_theorems is not None:
            theorems = theorems[: self.config.max_theorems]
        return theorems

    def run_theorem(
        self,
        theorem: Theorem,
        model_name: str,
        hinted: bool,
        reduced_dependencies: Optional[Sequence[str]] = None,
        model_override=None,
        search_config=None,
    ) -> TheoremOutcome:
        model = model_override if model_override is not None else get_model(
            model_name
        )
        env = self.project.env_for(theorem)
        checker = ProofChecker(env, tactic_timeout=self.config.tactic_timeout)
        builder = PromptBuilder(
            self.project,
            theorem,
            hint_names=self.splits.hint_names if hinted else None,
            window_tokens=model.context_window,
            reduced_dependencies=reduced_dependencies,
        )
        search = BestFirstSearch(
            checker,
            model,
            search_config
            or SearchConfig(
                width=self.config.width,
                fuel=self.config.fuel,
                tactic_timeout=self.config.tactic_timeout,
                frontier=self.config.frontier,
                dedup_states=self.config.dedup_states,
            ),
        )
        result = search.prove(theorem.name, theorem.statement, builder.build)
        outcome = TheoremOutcome(
            theorem=theorem,
            model=model_name,
            hinted=hinted,
            status=result.status,
            queries=result.stats.queries,
        )
        if result.proved:
            proof_text = result.proof_text()
            outcome.generated_proof = proof_text
            try:
                # Qed: replay the full script from scratch.
                run_script(env, theorem.statement, proof_text)
                outcome.revalidated = True
            except ReproError:
                outcome.revalidated = False
            outcome.similarity = normalized_similarity(
                proof_text, theorem.proof_text
            )
            human_tokens = max(1, count_tokens(theorem.proof_text))
            outcome.length_ratio = count_tokens(proof_text) / human_tokens
        return outcome

    def run(
        self,
        model_name: str,
        hinted: bool,
        theorems: Optional[Sequence[Theorem]] = None,
    ) -> EvalRun:
        chosen = list(theorems) if theorems is not None else self.theorems_for(
            model_name
        )
        run = EvalRun(model=model_name, hinted=hinted)
        for theorem in chosen:
            run.outcomes.append(self.run_theorem(theorem, model_name, hinted))
        return run

    # ------------------------------------------------------------------
    # §4.3 probes
    # ------------------------------------------------------------------

    def run_reduced_context(
        self,
        theorem: Theorem,
        model_name: str,
        dependencies: Sequence[str],
    ) -> TheoremOutcome:
        """Hand-reduced-context rerun of a failed theorem (§4.3)."""
        return self.run_theorem(
            theorem, model_name, hinted=False, reduced_dependencies=dependencies
        )

    def run_whole_proof(
        self, theorem: Theorem, attempts: int = 8
    ) -> Dict[str, object]:
        """o1-style whole-proof probe (§4.3): no search, one-shot scripts."""
        from repro.kernel.goals import initial_state
        from repro.llm.wholeproof import WholeProofModel

        model = WholeProofModel()
        env = self.project.env_for(theorem)
        builder = PromptBuilder(self.project, theorem)
        state = initial_state(env, theorem.statement)
        prompt = builder.build(state, [])
        scripts = model.generate(prompt, attempts)
        successes = 0
        for script in scripts:
            try:
                run_script(env, theorem.statement, script)
                successes += 1
            except ReproError:
                pass
        return {
            "theorem": theorem.name,
            "attempts": attempts,
            "successes": successes,
            "scripts": scripts,
        }
