"""Experiment configuration (defaults mirror the paper §4)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.corpus.splits import DEFAULT_SEED

__all__ = ["ExperimentConfig", "SMALL_MODELS", "LARGE_MODELS", "ALL_MODELS"]

SMALL_MODELS: Tuple[str, ...] = ("gpt-4o-mini", "gemini-1.5-flash")
LARGE_MODELS: Tuple[str, ...] = (
    "gpt-4o",
    "gemini-1.5-pro",
    "gemini-1.5-pro-128k",
)
ALL_MODELS: Tuple[str, ...] = SMALL_MODELS + LARGE_MODELS


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs for one evaluation sweep."""

    width: int = 8  # search width (Gemini's max outputs per query)
    fuel: int = 128  # model-query limit (GPT-f's configuration)
    tactic_timeout: float = 5.0  # seconds (paper's validity rule)
    hint_fraction: float = 0.5  # random theorems whose proofs are hints
    large_fraction: float = 0.5  # paper: 0.1 of a 10x larger corpus
    seed: int = DEFAULT_SEED
    max_theorems: Optional[int] = None  # cap for quick runs/benches
    frontier: str = "best-first"
    dedup_states: bool = True
    # Execution engine (repro.eval.executor): backend + parallelism.
    executor: str = "serial"  # serial | thread | process
    jobs: int = 1  # worker count for thread/process backends
    # Fault tolerance (repro.llm.resilient / repro.testing.faults).
    theorem_deadline: Optional[float] = None  # per-theorem wall clock
    task_retries: int = 2  # re-runs of a task whose worker died
    heartbeat: Optional[float] = None  # seconds before a silent worker
    # is presumed dead (process backend); None = wait indefinitely
    faults: Optional[str] = None  # FaultPlan spec for chaos sweeps
    # Repair loop (repro.repair): checker-feedback rounds allowed
    # after a failed search; 0 = single-shot (the paper's setting).
    repair_rounds: int = 0
    fallback_model: Optional[str] = None  # degradation target when the
    # primary's circuit breaker opens / retries are exhausted
    resilient: bool = True  # wrap models in ResilientGenerator
    # Observability (repro.obs): when True, every executed task records
    # a span tree (search/expand/tactic spans) shipped back on its
    # TaskResult.  Deliberately NOT part of TheoremTask.cache_key() —
    # tracing must never change an outcome record.
    trace: bool = False
    # Intra-search pipelining (repro.core.pipeline): generation calls
    # kept in flight per search.  0 = classic serial loop; 1 = the
    # pipelined executor, byte-identical to serial (validation mode);
    # >= 2 overlaps generation with checking.  Like `trace`, this is an
    # execution knob, deliberately NOT part of TheoremTask.cache_key():
    # depth 1 is bit-equal to serial, and any depth leaves per-theorem
    # coverage unchanged on the golden corpus
    # (tests/eval/test_pipeline_determinism.py pins both).
    pipeline_depth: int = 0
