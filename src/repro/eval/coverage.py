"""Figure 1: proof coverage by human-proof token-length bins —
plus the repair layer's coverage@k view over sampled attempts."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.corpus.tokenizer import LENGTH_BINS, bin_of_length
from repro.eval.runner import EvalRun, TheoremOutcome

__all__ = [
    "BinCoverage",
    "coverage_by_bin",
    "overall_coverage",
    "coverage_at_k",
    "BIN_LABELS",
]

BIN_LABELS = tuple(
    [f"<={edge}" for edge in LENGTH_BINS] + [f">{LENGTH_BINS[-1]}"]
)


@dataclass
class BinCoverage:
    label: str
    total: int
    proved: int

    @property
    def coverage(self) -> Optional[float]:
        if self.total == 0:
            return None
        return self.proved / self.total


def coverage_by_bin(outcomes: Sequence[TheoremOutcome]) -> List[BinCoverage]:
    bins = [BinCoverage(label, 0, 0) for label in BIN_LABELS]
    for outcome in outcomes:
        index = bin_of_length(outcome.theorem.proof_tokens)
        bins[index].total += 1
        bins[index].proved += outcome.proved
    return bins


def overall_coverage(outcomes: Sequence[TheoremOutcome]) -> float:
    if not outcomes:
        return 0.0
    return sum(o.proved for o in outcomes) / len(outcomes)


def coverage_at_k(records: Iterable, ks: Sequence[int]) -> Dict[int, float]:
    """coverage@k over attempt-expanded outcome records.

    Façade over :func:`repro.repair.sampling.coverage_at_k` so report
    code can stay on the eval layer; see there for the estimator.
    """
    from repro.repair.sampling import coverage_at_k as _coverage_at_k

    return _coverage_at_k(records, ks)


def coverage_under(outcomes: Sequence[TheoremOutcome], tokens: int) -> float:
    """Coverage restricted to theorems with human proofs < ``tokens``.

    The paper's headline slice is < 64 tokens (~60 % of FSCQ).
    """
    subset = [o for o in outcomes if o.theorem.proof_tokens < tokens]
    if not subset:
        return 0.0
    return sum(o.proved for o in subset) / len(subset)
