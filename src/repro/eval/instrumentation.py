"""Per-stage timing and counters for the evaluation engine.

A :class:`Metrics` object is a thread-safe sink for the pipeline's
four instrumented stages — prompt build, candidate generation, tactic
checking, and the final Qed replay — plus arbitrary named counters
(checker verdict histograms, store hit/miss accounting, …).

The sink is threaded *by duck type* through lower layers
(:class:`repro.serapi.checker.ProofChecker` and
:class:`repro.core.search.BestFirstSearch` accept any object with
``add_time``/``observe_verdict``); those modules never import this
one, keeping the layering acyclic.

Snapshots are plain JSON-able dicts, so process-pool workers can ship
their per-task metrics back to the parent, which :meth:`Metrics.merge`\\ s
them into the sweep-level sink.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from time import monotonic
from typing import Dict, Optional

__all__ = ["Metrics", "STAGES"]

# The pipeline stages the engine times (in pipeline order).
STAGES = ("prompt_build", "generation", "checking", "qed_replay")


class Metrics:
    """Thread-safe counters and per-stage wall-clock accumulators."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._stage_seconds: Dict[str, float] = {}
        self._stage_calls: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def incr(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def add_time(self, stage: str, seconds: float, calls: int = 1) -> None:
        with self._lock:
            self._stage_seconds[stage] = (
                self._stage_seconds.get(stage, 0.0) + seconds
            )
            self._stage_calls[stage] = self._stage_calls.get(stage, 0) + calls

    @contextmanager
    def timer(self, stage: str):
        started = monotonic()
        try:
            yield
        finally:
            self.add_time(stage, monotonic() - started)

    def observe_verdict(self, verdict: str, elapsed: float) -> None:
        """One checker call: histogram bucket + checking-stage time."""
        self.incr(f"verdict.{verdict}")
        self.add_time("checking", elapsed)

    # ------------------------------------------------------------------
    # Reading / combining
    # ------------------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def verdict_histogram(self) -> Dict[str, int]:
        prefix = "verdict."
        with self._lock:
            return {
                name[len(prefix):]: count
                for name, count in self._counters.items()
                if name.startswith(prefix)
            }

    def snapshot(self) -> dict:
        """A JSON-able copy: ``{"counters": …, "stages": …}``."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "stages": {
                    stage: {
                        "seconds": self._stage_seconds[stage],
                        "calls": self._stage_calls.get(stage, 0),
                    }
                    for stage in self._stage_seconds
                },
            }

    def merge(self, snapshot: Optional[dict]) -> None:
        """Fold another sink's :meth:`snapshot` into this one."""
        if not snapshot:
            return
        for name, count in snapshot.get("counters", {}).items():
            self.incr(name, count)
        for stage, cell in snapshot.get("stages", {}).items():
            self.add_time(stage, cell["seconds"], cell.get("calls", 0))

    def dump(self, path) -> None:
        """Write the snapshot as JSON (next to the run store)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
