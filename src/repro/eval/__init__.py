"""The paper's experiments: Figure 1, Tables 1-2, Figure 2, §4.3."""

from repro.eval.cases import CASE_LEMMAS, CaseStudy, render_case, run_case_studies
from repro.eval.categories import CategoryCoverage, category_table
from repro.eval.config import ALL_MODELS, LARGE_MODELS, SMALL_MODELS, ExperimentConfig
from repro.eval.coverage import (
    BIN_LABELS,
    BinCoverage,
    coverage_at_k,
    coverage_by_bin,
    coverage_under,
    overall_coverage,
)
from repro.eval.executor import (
    EXECUTOR_KINDS,
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    TaskResult,
    ThreadPoolExecutor,
    crash_result,
    make_executor,
)
from repro.eval.instrumentation import STAGES, Metrics
from repro.eval.outcomes import OutcomeRow, outcome_row, table2_rows
from repro.eval.report import (
    render_coverage_at_k,
    render_figure1,
    render_metrics,
    render_table1,
    render_table2,
)
from repro.eval.runner import (
    EvalRun,
    Runner,
    TheoremOutcome,
    record_from_outcome,
)
from repro.eval.similarity import (
    levenshtein,
    normalized_similarity,
    random_pair_baseline,
)
from repro.eval.store import OutcomeRecord, RunStore
from repro.eval.tasks import CACHE_KEY_VERSION, TheoremTask, sweep_tasks

__all__ = [
    "CASE_LEMMAS",
    "CaseStudy",
    "render_case",
    "run_case_studies",
    "CategoryCoverage",
    "category_table",
    "ALL_MODELS",
    "LARGE_MODELS",
    "SMALL_MODELS",
    "ExperimentConfig",
    "BIN_LABELS",
    "BinCoverage",
    "coverage_at_k",
    "coverage_by_bin",
    "coverage_under",
    "overall_coverage",
    "EXECUTOR_KINDS",
    "Executor",
    "ProcessPoolExecutor",
    "SerialExecutor",
    "TaskResult",
    "ThreadPoolExecutor",
    "crash_result",
    "make_executor",
    "STAGES",
    "Metrics",
    "OutcomeRow",
    "outcome_row",
    "table2_rows",
    "render_coverage_at_k",
    "render_figure1",
    "render_metrics",
    "render_table1",
    "render_table2",
    "EvalRun",
    "Runner",
    "TheoremOutcome",
    "record_from_outcome",
    "levenshtein",
    "normalized_similarity",
    "random_pair_baseline",
    "OutcomeRecord",
    "RunStore",
    "CACHE_KEY_VERSION",
    "TheoremTask",
    "sweep_tasks",
]
