"""Proof similarity: normalized Levenshtein (paper §4.2).

Similarity ranges over [0, 1]: 1 is an exact match, 0 complete
dissimilarity — ``1 - distance / max(len_a, len_b)`` over
whitespace-normalized proof text.  The paper reports that generated
proofs average < 0.6 similarity to the human ones (max 0.683), versus
0.360 for random pairs of unrelated FSCQ proofs.
"""

from __future__ import annotations

import random
from typing import List, Sequence

__all__ = [
    "levenshtein",
    "normalized_similarity",
    "normalize_proof",
    "random_pair_baseline",
]


def normalize_proof(text: str) -> str:
    """Collapse whitespace and strip bullets so layout doesn't count."""
    tokens = []
    for line in text.splitlines():
        stripped = line.strip().lstrip("-+*{} \t")
        if stripped:
            tokens.append(stripped)
    return " ".join(" ".join(tokens).split())


def levenshtein(a: str, b: str) -> int:
    """Classic O(len(a)·len(b)) edit distance, two-row DP."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(
                min(
                    previous[j] + 1,  # deletion
                    current[j - 1] + 1,  # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def normalized_similarity(generated: str, human: str) -> float:
    """1 = identical, 0 = completely dissimilar."""
    a = normalize_proof(generated)
    b = normalize_proof(human)
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein(a, b) / longest


def random_pair_baseline(
    proofs: Sequence[str], pairs: int = 200, seed: int = 0
) -> float:
    """Average similarity of random *unrelated* proof pairs.

    The paper's floor reference: 0.360 on FSCQ.
    """
    rng = random.Random(seed)
    usable = [p for p in proofs if p.strip()]
    if len(usable) < 2:
        return 0.0
    total = 0.0
    for _ in range(pairs):
        a, b = rng.sample(usable, 2)
        total += normalized_similarity(a, b)
    return total / pairs
