"""Context-window truncation.

When a prompt exceeds the model's context window, the paper keeps
"the portions closer to the next tactic" — i.e. the *end* of the
prompt (the current file's recent declarations and the active goal)
survives; the distant beginning is dropped.
"""

from __future__ import annotations

from repro.corpus.tokenizer import count_tokens, tokenize

__all__ = ["truncate_to_window"]

_MARKER = "(* ...context truncated... *)\n"


def truncate_to_window(prompt: str, window_tokens: int) -> str:
    """Keep the trailing ``window_tokens`` tokens of ``prompt``.

    Truncation happens at line granularity so declarations are not cut
    mid-identifier; the kept suffix is prefixed with a marker, as a
    real serving stack would signal an elided prefix.
    """
    if count_tokens(prompt) <= window_tokens:
        return prompt
    lines = prompt.splitlines(keepends=True)
    kept: list = []
    total = 0
    for line in reversed(lines):
        line_tokens = count_tokens(line)
        if total + line_tokens > window_tokens and kept:
            break
        kept.append(line)
        total += line_tokens
        if total >= window_tokens:
            break
    return _MARKER + "".join(reversed(kept))
