"""Prompt assembly for tactic prediction.

Layout (top to bottom)::

    <project context: declarations, hints per setting>
    (* Current theorem *)
    Lemma <name> : <statement>.
    Proof.
      <tactics executed so far>
    (* Current proof state *)
    <goal display>
    (* Next tactic? *)

The goal display and the step history sit at the very end so that
keep-the-end truncation (:mod:`repro.prompting.truncation`) always
preserves them — the model must never lose the active goals.

Two optional sections extend the layout without disturbing it:

* ``feedback`` — a repair round's failure block (the failing tactic
  and the checker's rejection message, see
  :mod:`repro.repair.prompts`), inserted just above the goal display
  so truncation keeps it;
* ``attempt_salt`` — a pass@k sampling token appended after the
  footer.  Generation is a pure function of (model, prompt), so the
  salt is *the* channel by which attempt i draws a different sample
  than attempt j.

Both default to absent, leaving prompts byte-identical to the
single-shot layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from repro.corpus.loader import Project
from repro.corpus.model import Theorem
from repro.kernel.goals import ProofState
from repro.prompting.context import context_for, reduced_context_for
from repro.prompting.truncation import truncate_to_window

__all__ = ["PromptBuilder", "GOAL_HEADER", "THEOREM_HEADER"]

THEOREM_HEADER = "(* Current theorem *)"
GOAL_HEADER = "(* Current proof state *)"
_FOOTER = "(* Next tactic? *)"


@dataclass
class PromptBuilder:
    """Builds per-step prompts for one theorem under one setting."""

    project: Project
    theorem: Theorem
    hint_names: Optional[Set[str]] = None  # None = vanilla setting
    window_tokens: Optional[int] = None
    reduced_dependencies: Optional[Sequence[str]] = None
    feedback: Optional[str] = None  # repair-round failure block
    attempt_salt: str = ""  # pass@k sampling token ("" = base sample)

    def __post_init__(self) -> None:
        if self.reduced_dependencies is not None:
            self._context = reduced_context_for(
                self.project, self.theorem, self.reduced_dependencies
            )
        else:
            self._context = context_for(
                self.project, self.theorem, self.hint_names
            )

    def build(self, state: ProofState, steps: Sequence[str]) -> str:
        """The prompt for predicting the next tactic at ``state``."""
        parts: List[str] = [self._context]
        parts.append("")
        parts.append(THEOREM_HEADER)
        parts.append(
            f"Lemma {self.theorem.name} : {self.theorem.statement_text}."
        )
        parts.append("Proof.")
        for step in steps:
            parts.append(f"  {step}.")
        if self.feedback:
            parts.append(self.feedback)
        parts.append(GOAL_HEADER)
        parts.append(state.render())
        parts.append(_FOOTER)
        if self.attempt_salt:
            parts.append(f"(* sample {self.attempt_salt} *)")
        prompt = "\n".join(parts)
        if self.window_tokens is not None:
            prompt = truncate_to_window(prompt, self.window_tokens)
        return prompt
