"""Extended proof-context extraction.

The paper's key departure from GPT-f: instead of showing the model
only the active goals, the prompt carries *project context* —
"definitions, theorem statements, and proof steps in the current file
and imported files up to (but not beyond) the active proof goals".

:func:`context_for` walks the theorem's file and its transitive
imports in load order and renders each declaration's source text.  In
the *vanilla* setting lemma proofs are omitted (statements only); in
the *hint* setting the proofs of the theorems in the hint split are
included verbatim.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.corpus.loader import Project
from repro.corpus.model import Declaration, SourceFile, Theorem

__all__ = ["context_for", "strip_proof", "reduced_context_for"]


def strip_proof(decl: Declaration) -> str:
    """A lemma's source with the proof body elided (vanilla setting)."""
    if decl.kind != "lemma":
        return decl.source
    assert decl.statement_text is not None
    return f"Lemma {decl.name} : {decl.statement_text}.\nProof. (* ... *) Qed."


def _import_closure(project: Project, file_name: str) -> List[SourceFile]:
    """Files visible from ``file_name``, in project load order."""
    visible: Set[str] = set()
    by_name = {f.name: f for f in project.files}

    def visit(name: str) -> None:
        if name in visible:
            return
        visible.add(name)
        for imp in by_name[name].imports:
            visit(imp)

    visit(file_name)
    return [f for f in project.files if f.name in visible]


def context_for(
    project: Project,
    theorem: Theorem,
    hint_names: Optional[Set[str]] = None,
) -> str:
    """The proof context shown to the model for ``theorem``.

    ``hint_names`` is the set of theorem names whose human proofs are
    revealed (the paper's hint setting: a random, fixed 50 %);
    ``None`` means the vanilla setting (no proofs at all).
    """
    hint_names = hint_names or set()
    chunks: List[str] = []
    for source_file in _import_closure(project, theorem.file):
        chunks.append(source_file.render_header())
        for index, decl in enumerate(source_file.declarations):
            if source_file.name == theorem.file and index >= theorem.index:
                break  # never reveal anything at or past the active goal
            if decl.kind == "lemma" and decl.name not in hint_names:
                chunks.append(strip_proof(decl))
            else:
                chunks.append(decl.source)
    return "\n\n".join(chunks)


def reduced_context_for(
    project: Project,
    theorem: Theorem,
    dependency_names: Sequence[str],
) -> str:
    """A hand-reduced context: only the named dependencies.

    Reproduces the paper's §4.3 probe, where manually including only
    the necessary definitions and lemmas let models finish proofs they
    otherwise failed.
    """
    wanted = set(dependency_names)
    chunks: List[str] = []
    for source_file in _import_closure(project, theorem.file):
        for index, decl in enumerate(source_file.declarations):
            if source_file.name == theorem.file and index >= theorem.index:
                break
            if decl.name in wanted:
                chunks.append(decl.source)
    return "\n\n".join(chunks)
