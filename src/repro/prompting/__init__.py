"""Prompt construction: proof context, hints, truncation."""

from repro.prompting.context import context_for, reduced_context_for, strip_proof
from repro.prompting.prompt import GOAL_HEADER, PromptBuilder, THEOREM_HEADER
from repro.prompting.truncation import truncate_to_window

__all__ = [
    "context_for",
    "reduced_context_for",
    "strip_proof",
    "PromptBuilder",
    "GOAL_HEADER",
    "THEOREM_HEADER",
    "truncate_to_window",
]
