"""S-expressions for the SerAPI-like protocol.

SerAPI talks s-expressions; so does our machine-facing layer.  The
representation is minimal: an atom is a Python ``str``; a list is a
Python ``list``.  Atoms are quoted on output whenever they contain
whitespace, parentheses, or quotes.
"""

from __future__ import annotations

from typing import List, Union

from repro.errors import ParseError

__all__ = ["Sexp", "dumps", "loads"]

Sexp = Union[str, List["Sexp"]]

_SPECIAL = set(' \t\n()"')


def _needs_quoting(atom: str) -> bool:
    return atom == "" or any(ch in _SPECIAL for ch in atom)


def dumps(value: Sexp) -> str:
    """Render an s-expression to text."""
    if isinstance(value, str):
        if _needs_quoting(value):
            escaped = value.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        return value
    return "(" + " ".join(dumps(item) for item in value) + ")"


def loads(text: str) -> Sexp:
    """Parse one s-expression from text."""
    value, index = _parse(text, 0)
    index = _skip_ws(text, index)
    if index != len(text):
        raise ParseError(f"trailing s-expression input at {index}", index)
    return value


def _skip_ws(text: str, i: int) -> int:
    while i < len(text) and text[i].isspace():
        i += 1
    return i


def _parse(text: str, i: int):
    i = _skip_ws(text, i)
    if i >= len(text):
        raise ParseError("unexpected end of s-expression", i)
    ch = text[i]
    if ch == "(":
        items: List[Sexp] = []
        i += 1
        while True:
            i = _skip_ws(text, i)
            if i >= len(text):
                raise ParseError("unclosed s-expression list", i)
            if text[i] == ")":
                return items, i + 1
            item, i = _parse(text, i)
            items.append(item)
    if ch == '"':
        out = []
        i += 1
        while i < len(text):
            ch = text[i]
            if ch == "\\" and i + 1 < len(text):
                out.append(text[i + 1])
                i += 2
                continue
            if ch == '"':
                return "".join(out), i + 1
            out.append(ch)
            i += 1
        raise ParseError("unclosed string atom", i)
    if ch == ")":
        raise ParseError("unexpected ')'", i)
    start = i
    while i < len(text) and not text[i].isspace() and text[i] not in "()\"":
        i += 1
    return text[start:i], i
