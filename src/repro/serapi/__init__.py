"""The SerAPI-like machine interface over the proof kernel.

* :mod:`repro.serapi.sexp` — s-expression reader/printer.
* :mod:`repro.serapi.session` — stateful proof document (STM analogue).
* :mod:`repro.serapi.protocol` — Add/Exec/Query/Cancel command server.
* :mod:`repro.serapi.checker` — the tactic-validity checker the
  best-first search drives (valid / rejected / duplicate / timeout).
"""

from repro.serapi.checker import CheckResult, ProofChecker, Verdict
from repro.serapi.protocol import SerapiServer
from repro.serapi.session import Session

__all__ = ["CheckResult", "ProofChecker", "Verdict", "SerapiServer", "Session"]
