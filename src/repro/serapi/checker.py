"""The proof checker facade the search engine drives.

This is the reproduction of the paper's "custom Coq proof checker"
built on the STM + SerAPI: given a proof state and a candidate tactic
string, classify it as valid (returning the new state) or invalid for
one of the paper's three reasons:

* ``rejected`` — parse error or tactic failure ("rejected by Coq");
* ``duplicate`` — the resulting proof state was already encountered in
  this search tree;
* ``timeout`` — execution exceeded the budget (paper: 5 seconds).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.deadline import TIMEOUT_MESSAGE, Deadline
from repro.errors import ParseError, ReproError, TacticError, TacticTimeout
from repro.kernel.env import Environment
from repro.kernel.goals import ProofState, initial_state
from repro.kernel.parser import parse_statement
from repro.kernel.terms import Term
from repro.obs.trace import NULL_TRACER
from repro.tactics.base import run_tactic
from repro.tactics.parse import parse_tactic

__all__ = ["Verdict", "CheckResult", "ProofChecker"]

DEFAULT_TACTIC_TIMEOUT = 5.0  # seconds, as in the paper


class Verdict(enum.Enum):
    VALID = "valid"
    REJECTED = "rejected"
    DUPLICATE = "duplicate"
    TIMEOUT = "timeout"


@dataclass
class CheckResult:
    verdict: Verdict
    state: Optional[ProofState] = None  # set when VALID
    message: str = ""
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.verdict is Verdict.VALID


class ProofChecker:
    """Validates candidate tactics against proof states."""

    def __init__(
        self,
        env: Environment,
        tactic_timeout: float = DEFAULT_TACTIC_TIMEOUT,
        metrics=None,
        state_keys: str = "fingerprint",
        clock: Callable[[], float] = time.monotonic,
        tracer=None,
    ) -> None:
        """``metrics`` is an optional duck-typed sink (an object with
        ``observe_verdict(verdict, elapsed)``, e.g.
        :class:`repro.eval.instrumentation.Metrics`) fed one
        observation per :meth:`check` call.

        ``state_keys`` selects the duplicate-detection key:
        ``"fingerprint"`` (default) uses the O(1) structural hash,
        ``"string"`` the original pretty-rendered key — kept as the
        reference oracle for the differential tests and for debugging
        suspected fingerprint collisions.

        ``clock`` is the monotonic time source used for the per-tactic
        :class:`~repro.deadline.Deadline` and ``elapsed`` accounting —
        injectable so timeout paths are testable without real stalls.

        ``tracer`` is an optional :class:`repro.obs.trace.Tracer`; when
        given, every :meth:`check` call records a ``tactic`` span with
        the candidate text, verdict, and message.  The default no-op
        tracer makes tracing observationally free when off."""
        if state_keys not in ("fingerprint", "string"):
            raise ValueError(f"unknown state_keys mode: {state_keys!r}")
        self.env = env
        self.tactic_timeout = tactic_timeout
        self.metrics = metrics
        self.state_keys = state_keys
        self.clock = clock
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def start(self, statement: Term) -> ProofState:
        return initial_state(self.env, statement)

    def start_text(self, statement_text: str) -> ProofState:
        return self.start(parse_statement(self.env, statement_text))

    def replay_prefix(
        self, statement: Term, tactics: Sequence[str]
    ) -> Tuple[ProofState, List[str]]:
        """Replay a validated tactic prefix from a fresh initial state.

        The repair layer stores the surviving prefix of a failed
        search (:class:`repro.core.result.FailureContext`); this
        replays it, returning the state at the failure frontier plus
        the tactics that still applied.  A tactic the checker now
        refuses truncates the replay there — the same rule the search
        engine applies when seeding its tree from a prefix.
        """
        state = self.start(statement)
        survived: List[str] = []
        for tactic in tactics:
            result = self.check(state, tactic)
            if result.verdict is not Verdict.VALID or result.state is None:
                break
            state = result.state
            survived.append(tactic)
        return state, survived

    def state_key(self, state: ProofState):
        """The duplicate-detection key for ``state`` (mode-dependent)."""
        if self.state_keys == "fingerprint":
            return state.fingerprint()
        return state.key()

    def check(
        self,
        state: ProofState,
        tactic_text: str,
        seen_keys: Optional[Set] = None,
    ) -> CheckResult:
        """Validate ``tactic_text`` against ``state``.

        ``seen_keys`` is the set of proof-state keys already in the
        search tree; reaching one of them makes the tactic invalid
        (the paper's duplicate-state rule).
        """
        tracer = self.tracer
        with tracer.span("tactic") as span:
            result = self._check(state, tactic_text, seen_keys)
            if tracer.enabled:
                span.set(
                    tactic=tactic_text,
                    verdict=result.verdict.value,
                    message=result.message[:120],
                )
        if self.metrics is not None:
            self.metrics.observe_verdict(result.verdict.value, result.elapsed)
        return result

    def _check(
        self,
        state: ProofState,
        tactic_text: str,
        seen_keys: Optional[Set] = None,
    ) -> CheckResult:
        started = self.clock()
        # One deadline governs the whole check: the cooperative
        # interrupt inside run_tactic (combinators, auto/lia loops,
        # reduction budgets all poll it) and the post-hoc slow-tactic
        # verdict below share this clock and expiry, so both paths
        # agree on verdict, message, and elapsed accounting.
        deadline = Deadline.after(self.tactic_timeout, clock=self.clock)
        try:
            node = parse_tactic(tactic_text)
        except ParseError as exc:
            # Parse time counts too: a checker spends real wall-clock
            # rejecting malformed candidates, and instrumentation
            # would under-count checking time with elapsed=0 here.
            return CheckResult(
                Verdict.REJECTED,
                message=f"parse: {exc}",
                elapsed=self.clock() - started,
            )
        try:
            new_state = run_tactic(self.env, state, node, deadline=deadline)
        except TacticTimeout as exc:
            return CheckResult(
                Verdict.TIMEOUT,
                message=str(exc),
                elapsed=self.clock() - started,
            )
        except (TacticError, ReproError) as exc:
            return CheckResult(
                Verdict.REJECTED,
                message=str(exc),
                elapsed=self.clock() - started,
            )
        elapsed = self.clock() - started
        if deadline.expired():
            # A tactic that ran past its budget without hitting a
            # cooperative checkpoint: same verdict and message as the
            # in-flight TacticTimeout path.
            return CheckResult(
                Verdict.TIMEOUT, message=TIMEOUT_MESSAGE, elapsed=elapsed
            )
        if seen_keys is not None:
            key = self.state_key(new_state)
            if key in seen_keys:
                return CheckResult(
                    Verdict.DUPLICATE,
                    message="proof state already in the search tree",
                    elapsed=elapsed,
                )
        return CheckResult(Verdict.VALID, state=new_state, elapsed=elapsed)
