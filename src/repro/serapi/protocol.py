"""The SerAPI-like wire protocol.

Commands mirror SerAPI's surface: ``(Add (...))``, ``(Exec sid)``,
``(Cancel sid)``, ``(Query Goals)``; every command produces a list of
answer s-expressions ending in ``(Answer tag Completed)``.  This layer
exists so that the checker the search engine drives has the same
machine-friendly seam the paper built on SerAPI — and it is exercised
directly by the protocol tests.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ReproError, SessionError
from repro.kernel.env import Environment
from repro.serapi.session import Session
from repro.serapi.sexp import Sexp, dumps, loads

__all__ = ["SerapiServer"]


class SerapiServer:
    """Dispatches textual s-expression commands against one session."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.session: Optional[Session] = None
        self._tag = 0

    # ------------------------------------------------------------------

    def handle_text(self, line: str) -> List[str]:
        """Process one command line; returns rendered answers."""
        return [dumps(a) for a in self.handle(loads(line))]

    def handle(self, command: Sexp) -> List[Sexp]:
        self._tag += 1
        tag = str(self._tag)
        try:
            answers = self._dispatch(command)
        except ReproError as exc:
            return [
                ["Answer", tag, ["CoqExn", str(exc)]],
                ["Answer", tag, "Completed"],
            ]
        return [["Answer", tag, a] for a in answers] + [
            ["Answer", tag, "Completed"]
        ]

    # ------------------------------------------------------------------

    def _dispatch(self, command: Sexp) -> List[Sexp]:
        if not isinstance(command, list) or not command:
            raise SessionError("malformed command")
        head = command[0]
        if head == "NewDoc":
            # (NewDoc "statement text")
            if len(command) != 2 or not isinstance(command[1], str):
                raise SessionError("NewDoc expects a statement string")
            self.session = Session.for_goal_text(self.env, command[1])
            return [["Added", "0"]]
        if self.session is None:
            raise SessionError("no document; send NewDoc first")
        if head == "Add":
            if len(command) != 2 or not isinstance(command[1], str):
                raise SessionError("Add expects a sentence string")
            sid = self.session.add(command[1])
            return [["Added", str(sid)]]
        if head == "Exec":
            if len(command) != 2 or not isinstance(command[1], str):
                raise SessionError("Exec expects a sid")
            self.session.exec(int(command[1]))
            return [["Executed", str(self.session.current_state().num_goals())]]
        if head == "Cancel":
            if len(command) != 2 or not isinstance(command[1], str):
                raise SessionError("Cancel expects a sid")
            self.session.cancel(int(command[1]))
            return [["Cancelled"]]
        if head == "Query":
            if len(command) == 2 and command[1] == "Goals":
                return [["ObjList", [["CoqString", self.session.goals_text()]]]]
            if len(command) == 2 and command[1] == "Completed":
                return [
                    ["Completed", "true" if self.session.is_complete() else "false"]
                ]
            raise SessionError("unknown query")
        raise SessionError(f"unknown command: {head}")
