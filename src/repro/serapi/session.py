"""A stateful proof-document session (Coq STM analogue).

The session holds a growing document of *sentences* (tactic or
command texts), each assigned a state id, exactly like Coq's state
transition machine that SerAPI drives.  Sentences can be added,
executed, and cancelled; cancellation rolls the proof state back, the
operation proof search relies on to explore branches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SessionError, TacticError
from repro.kernel.env import Environment
from repro.kernel.goals import ProofState, initial_state
from repro.kernel.parser import parse_statement
from repro.kernel.terms import Term
from repro.tactics.base import run_tactic
from repro.tactics.parse import parse_tactic

__all__ = ["SentenceStatus", "Sentence", "Session"]


@dataclass
class Sentence:
    sid: int
    text: str
    status: str = "added"  # added | executed | failed | cancelled
    error: Optional[str] = None


class Session:
    """One interactive proof attempt over an environment."""

    def __init__(
        self,
        env: Environment,
        statement: Term,
        tactic_timeout: Optional[float] = None,
    ) -> None:
        self.env = env
        self.statement = statement
        self.tactic_timeout = tactic_timeout
        self._sentences: List[Sentence] = []
        self._states: Dict[int, ProofState] = {0: initial_state(env, statement)}
        self._tip = 0
        self._next_sid = 1

    @classmethod
    def for_goal_text(
        cls, env: Environment, statement_text: str, **kwargs
    ) -> "Session":
        return cls(env, parse_statement(env, statement_text), **kwargs)

    # ------------------------------------------------------------------

    def add(self, text: str) -> int:
        """Add a sentence after the current tip; returns its sid."""
        sid = self._next_sid
        self._next_sid += 1
        self._sentences.append(Sentence(sid, text))
        return sid

    def exec(self, sid: int) -> ProofState:
        """Execute all added sentences up to and including ``sid``."""
        for sentence in self._sentences:
            if sentence.sid > sid:
                break
            if sentence.status in ("executed", "cancelled"):
                continue
            state = self._states[self._tip]
            try:
                node = parse_tactic(sentence.text)
                new_state = run_tactic(
                    self.env, state, node, timeout=self.tactic_timeout
                )
            except Exception as exc:
                sentence.status = "failed"
                sentence.error = str(exc)
                raise TacticError(f"sentence {sid}: {exc}") from exc
            sentence.status = "executed"
            self._states[sentence.sid] = new_state
            self._tip = sentence.sid
        return self._states[self._tip]

    def cancel(self, sid: int) -> None:
        """Cancel ``sid`` and everything after it; roll the tip back."""
        found = False
        for sentence in self._sentences:
            if sentence.sid >= sid:
                found = True
                sentence.status = "cancelled"
                self._states.pop(sentence.sid, None)
        if not found:
            raise SessionError(f"no sentence with sid {sid}")
        self._sentences = [s for s in self._sentences if s.sid < sid]
        self._tip = max(self._states)

    # ------------------------------------------------------------------

    def current_state(self) -> ProofState:
        return self._states[self._tip]

    def goals_text(self) -> str:
        return self.current_state().render()

    def is_complete(self) -> bool:
        return self.current_state().is_complete()

    def sentences(self) -> List[Sentence]:
        return list(self._sentences)
