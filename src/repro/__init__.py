"""Reproduction of "Can Large Language Models Verify System Software?
A Case Study Using FSCQ as a Benchmark" (HotOS '25).

Packages:

* :mod:`repro.kernel` — the Coq-like proof kernel.
* :mod:`repro.tactics` — the tactic interpreter.
* :mod:`repro.serapi` — the SerAPI-like machine protocol and checker.
* :mod:`repro.corpus` — the FSCQ-like benchmark corpus.
* :mod:`repro.llm` — the simulated LLM tactic generators.
* :mod:`repro.prompting` — proof-context and prompt construction.
* :mod:`repro.core` — the paper's contribution: best-first proof search.
* :mod:`repro.eval` — the paper's experiments (Figures 1-2, Tables 1-2).
"""

__version__ = "1.0.0"
