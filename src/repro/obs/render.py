"""Render recorded trace JSONL as annotated trees (``repro trace``).

A trace file (one span dict per line, possibly many traces interleaved
by concurrent service jobs) is grouped by trace id and printed as:

* an **annotated tree** — every expansion with its fuel index, node
  depth, cumulative log-prob, and goal preview; every candidate tactic
  with its verdict and elapsed time; the search root with its outcome;
* a **per-stage self-time summary** — for each span kind, calls, total
  time, and *self* time (total minus time attributed to child spans),
  which is the number the paper's failure-mode analysis needs: a
  FUELOUT whose time went 90 % into ``generation`` reads very
  differently from one dominated by ``tactic`` checking.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = [
    "group_traces",
    "render_trace",
    "stage_summary",
    "render_summary",
]


def group_traces(spans: List[dict]) -> Dict[str, List[dict]]:
    """Spans grouped by trace id, preserving file order of first sight."""
    traces: Dict[str, List[dict]] = {}
    for span in spans:
        traces.setdefault(str(span.get("trace", "?")), []).append(span)
    return traces


def _fmt_elapsed(seconds: Optional[float]) -> str:
    seconds = seconds or 0.0
    if seconds < 1.0:
        return f"{seconds * 1000:.1f}ms"
    return f"{seconds:.2f}s"


def _fmt_attrs(attrs: dict, skip: Tuple[str, ...] = ()) -> str:
    parts = []
    for key, value in attrs.items():
        if key in skip:
            continue
        if isinstance(value, float):
            value = f"{value:.3f}"
        parts.append(f"{key}={value}")
    return " ".join(parts)


def _label(span: dict) -> str:
    """One human line for a span (verdict/fuel/score annotations)."""
    name = span.get("name", "?")
    attrs = dict(span.get("attrs") or {})
    elapsed = _fmt_elapsed(span.get("elapsed"))
    if name in ("task", "job"):
        head = f"{name} {attrs.pop('theorem', '?')}"
        return f"{head} {_fmt_attrs(attrs)} [{elapsed}]".rstrip()
    if name == "search":
        status = attrs.pop("status", "?")
        return (
            f"search {attrs.pop('theorem', '?')} → {status} "
            f"{_fmt_attrs(attrs)} [{elapsed}]"
        )
    if name == "expand":
        fuel = attrs.pop("query", "?")
        fuel_cap = attrs.pop("fuel", None)
        fuel_txt = f"q{fuel}/{fuel_cap}" if fuel_cap else f"q{fuel}"
        depth = attrs.pop("depth", "?")
        score = attrs.pop("score", None)
        score_txt = (
            f" logp={float(score):.3f}" if score is not None else ""
        )
        goal = attrs.pop("goal", None)
        goal_txt = f'  goal="{goal}"' if goal else ""
        rest = _fmt_attrs(attrs)
        rest_txt = f" {rest}" if rest else ""
        return (
            f"expand {fuel_txt} depth={depth}{score_txt}{rest_txt} "
            f"[{elapsed}]{goal_txt}"
        )
    if name == "tactic":
        tactic = attrs.pop("tactic", "?")
        verdict = attrs.pop("verdict", "?")
        message = attrs.pop("message", "")
        msg_txt = f"  ({message})" if message and verdict != "valid" else ""
        return f'tactic "{tactic}" → {verdict} [{elapsed}]{msg_txt}'
    rest = _fmt_attrs(attrs)
    rest_txt = f" {rest}" if rest else ""
    return f"{name}{rest_txt} [{elapsed}]"


def render_trace(spans: List[dict], max_width: int = 0) -> str:
    """The annotated tree for one trace's spans."""
    by_id = {span.get("span"): span for span in spans}
    children: Dict[Optional[int], List[dict]] = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None and parent not in by_id:
            parent = None  # orphan (torn file): promote to root
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.get("start", 0.0), s.get("span", 0)))

    lines: List[str] = []

    def walk(span: dict, prefix: str, tail: bool, depth: int) -> None:
        if depth == 0:
            lines.append(_label(span))
            child_prefix = ""
        else:
            branch = "└─ " if tail else "├─ "
            lines.append(prefix + branch + _label(span))
            child_prefix = prefix + ("   " if tail else "│  ")
        kids = children.get(span.get("span"), [])
        for index, kid in enumerate(kids):
            walk(kid, child_prefix, index == len(kids) - 1, depth + 1)

    roots = children.get(None, [])
    for root in roots:
        walk(root, "", True, 0)
    text = "\n".join(lines)
    if max_width:
        text = "\n".join(
            line[: max_width - 1] + "…" if len(line) > max_width else line
            for line in text.splitlines()
        )
    return text


def stage_summary(spans: List[dict]) -> List[dict]:
    """Per-span-kind ``{name, calls, total, self}`` rows (self-time sorted).

    *self* time is a span's elapsed minus its direct children's —
    summed per kind, it attributes every second of the trace to exactly
    one stage (modulo clock granularity).
    """
    child_time: Dict[Optional[int], float] = {}
    for span in spans:
        parent = span.get("parent")
        child_time[parent] = child_time.get(parent, 0.0) + float(
            span.get("elapsed") or 0.0
        )
    rows: Dict[str, Dict[str, float]] = {}
    for span in spans:
        name = str(span.get("name", "?"))
        row = rows.setdefault(
            name, {"calls": 0, "total": 0.0, "self": 0.0}
        )
        elapsed = float(span.get("elapsed") or 0.0)
        row["calls"] += 1
        row["total"] += elapsed
        row["self"] += max(
            0.0, elapsed - child_time.get(span.get("span"), 0.0)
        )
    return sorted(
        (
            {"name": name, **row}
            for name, row in rows.items()
        ),
        key=lambda row: row["self"],
        reverse=True,
    )


def render_summary(spans: List[dict]) -> str:
    """The self-time table for one trace."""
    rows = stage_summary(spans)
    total_self = sum(row["self"] for row in rows) or 1.0
    lines = [
        f"{'stage':<14} {'calls':>6} {'total':>10} {'self':>10} {'self%':>7}"
    ]
    for row in rows:
        lines.append(
            f"{row['name']:<14} {int(row['calls']):>6} "
            f"{_fmt_elapsed(row['total']):>10} "
            f"{_fmt_elapsed(row['self']):>10} "
            f"{row['self'] / total_self:>7.1%}"
        )
    return "\n".join(lines)
