"""Prometheus text-format exposition for the service ``/metrics``.

Renders the evaluation layer's :class:`~repro.eval.instrumentation.Metrics`
snapshot plus the service gauges (queue depth, in-flight jobs, batcher
and proof-cache statistics) in the Prometheus *text exposition format*
(version 0.0.4) — the format every scrape-based monitoring stack
ingests, unlike the bespoke JSON blob the route also serves.

Typing discipline (what a scraper relies on):

* every eval **counter** (verdict histograms, cache hit/miss tallies,
  task accounting) is monotonically increasing over the life of the
  process → exported as ``repro_<name>_total`` with ``# TYPE …
  counter``;
* per-stage wall-clock accumulators become the two counter families
  ``repro_stage_seconds_total{stage=…}`` / ``repro_stage_calls_total``;
* instantaneous service readings (queue depth, in-flight, records in
  cache, pins) are **gauges** — they go up *and down*, and labelling
  them counters would corrupt ``rate()`` queries;
* cumulative service readings (batches dispatched, cache evictions)
  are counters, with the model name as a label where one applies.

Each metric family is emitted exactly once, ``# TYPE`` line first;
metric names are sanitised to ``[a-zA-Z_][a-zA-Z0-9_]*`` and raw names
that collapse onto the same family are summed (deterministic, and the
only way to keep the no-duplicate-family invariant without inventing
names).  ``tests/obs/test_prometheus.py`` lints the output against the
format's grammar.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

__all__ = ["render_prometheus"]

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_]")
_LEADING_DIGIT = re.compile(r"^[0-9]")


def _sanitize(name: str) -> str:
    """A legal Prometheus metric-name fragment for ``name``."""
    cleaned = _INVALID_CHARS.sub("_", name)
    if _LEADING_DIGIT.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class _Family:
    """One metric family: a type, a help line, and its samples."""

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        # label tuple -> value; summed on collision so a family never
        # emits the same label set twice.
        self.samples: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def add(self, value, labels: Optional[Dict[str, str]] = None) -> None:
        key = tuple(sorted((labels or {}).items()))
        if key in self.samples and isinstance(value, (int, float)):
            self.samples[key] += value
        else:
            self.samples[key] = value

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for key, value in sorted(self.samples.items()):
            if key:
                labels = ",".join(
                    f'{name}="{_escape_label(str(val))}"'
                    for name, val in key
                )
                lines.append(f"{self.name}{{{labels}}} {_format_value(value)}")
            else:
                lines.append(f"{self.name} {_format_value(value)}")
        return lines


class _Registry:
    """Ordered family set enforcing one ``# TYPE`` per family."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def family(self, name: str, kind: str, help_text: str) -> _Family:
        existing = self._families.get(name)
        if existing is None:
            existing = _Family(name, kind, help_text)
            self._families[name] = existing
        return existing

    def render(self) -> str:
        lines: List[str] = []
        for family in self._families.values():
            lines.extend(family.render())
        return "\n".join(lines) + "\n"


def render_prometheus(
    snapshot: Optional[dict], service: Optional[dict] = None
) -> str:
    """The exposition text for a metrics snapshot + service gauges.

    ``snapshot`` is :meth:`Metrics.snapshot`'s dict (or an object with
    a ``snapshot()`` method); ``service`` is the gauge block the server
    assembles (uptime, scheduler, batchers, proof cache, pins) — the
    same dict its JSON ``/metrics`` serves under ``"service"``.
    """
    if snapshot is not None and hasattr(snapshot, "snapshot"):
        snapshot = snapshot.snapshot()
    snapshot = snapshot or {}
    registry = _Registry()

    counters = snapshot.get("counters", {})
    for name, count in sorted(counters.items()):
        family = registry.family(
            f"repro_{_sanitize(name)}_total",
            "counter",
            f"repro counter {name}",
        )
        family.add(count)

    # Derived per-cache hit rates: the raw ``kernel.cache.<name>.hits``
    # / ``.misses`` counters are exported above, but a regression like
    # a memo whose hit rate collapses to 0% should be a one-glance
    # gauge in CI artifacts, not a PromQL exercise.
    cache_tallies: Dict[str, Dict[str, float]] = {}
    for name, count in counters.items():
        if name.startswith("kernel.cache.") and name.count(".") == 3:
            _, _, cache_name, field = name.split(".")
            cache_tallies.setdefault(cache_name, {})[field] = count
    if cache_tallies:
        rate_family = registry.family(
            "repro_kernel_cache_hit_rate",
            "gauge",
            "per-cache hit fraction over the metrics snapshot window",
        )
        for cache_name in sorted(cache_tallies):
            cell = cache_tallies[cache_name]
            hits = cell.get("hits", 0)
            total = hits + cell.get("misses", 0)
            rate_family.add(
                hits / total if total else 0.0, {"cache": cache_name}
            )

    seconds = registry.family(
        "repro_stage_seconds_total",
        "counter",
        "cumulative wall-clock seconds per pipeline stage",
    )
    calls = registry.family(
        "repro_stage_calls_total",
        "counter",
        "cumulative timed calls per pipeline stage",
    )
    for stage, cell in sorted(snapshot.get("stages", {}).items()):
        labels = {"stage": stage}
        seconds.add(float(cell.get("seconds", 0.0)), labels)
        calls.add(int(cell.get("calls", 0)), labels)

    if service:
        _render_service(registry, service)
    return registry.render()


def _render_service(registry: _Registry, service: dict) -> None:
    gauge = registry.family
    if "uptime" in service:
        gauge(
            "repro_service_uptime_seconds",
            "gauge",
            "seconds since the service booted",
        ).add(float(service["uptime"]))

    scheduler = service.get("scheduler") or {}
    for key, help_text in (
        ("queue_depth", "jobs waiting in the scheduler queue"),
        ("in_flight", "proof searches currently running"),
        ("workers", "configured concurrent search workers"),
        ("max_queued", "admission bound beyond in-flight jobs"),
    ):
        if key in scheduler:
            gauge(
                f"repro_service_{key}", "gauge", help_text
            ).add(scheduler[key])
    if "draining" in scheduler:
        gauge(
            "repro_service_draining",
            "gauge",
            "1 while the scheduler refuses new work",
        ).add(bool(scheduler["draining"]))
    jobs = gauge(
        "repro_service_jobs",
        "gauge",
        "known jobs by lifecycle state",
    )
    for state, count in sorted((scheduler.get("jobs") or {}).items()):
        jobs.add(count, {"state": state})

    batch_queue = gauge(
        "repro_service_batch_queue_depth",
        "gauge",
        "generation requests parked in the micro-batcher",
    )
    batches = gauge(
        "repro_service_batches_total",
        "counter",
        "micro-batches dispatched to the model",
    )
    batched = gauge(
        "repro_service_batched_queries_total",
        "counter",
        "generation queries carried by dispatched batches",
    )
    max_batch = gauge(
        "repro_service_batch_max_size",
        "gauge",
        "largest micro-batch dispatched so far",
    )
    for stats in service.get("batchers") or []:
        labels = {"model": str(stats.get("model", "unknown"))}
        batch_queue.add(stats.get("queue_depth", 0), labels)
        batches.add(stats.get("batches", 0), labels)
        batched.add(stats.get("queries", 0), labels)
        max_batch.add(stats.get("max_batch_size", 0), labels)

    cache = service.get("proof_cache") or {}
    if cache:
        gauge(
            "repro_service_proof_cache_records",
            "gauge",
            "records resident in the proof cache",
        ).add(cache.get("records", 0))
        gauge(
            "repro_service_proof_cache_inflight",
            "gauge",
            "single-flight keys currently leading a search",
        ).add(cache.get("inflight", 0))
        gauge(
            "repro_service_proof_cache_persistent",
            "gauge",
            "1 when the proof cache is file-backed",
        ).add(bool(cache.get("persistent", False)))
        if "evictions" in cache:
            gauge(
                "repro_service_proof_cache_evictions_total",
                "counter",
                "records evicted from the bounded in-memory proof cache",
            ).add(cache.get("evictions", 0))

    if "kernel_cache_pins" in service:
        gauge(
            "repro_service_kernel_cache_pins",
            "gauge",
            "kernel cache pin scopes currently held by live searches",
        ).add(service["kernel_cache_pins"])

    kernel_caches = service.get("kernel_cache") or {}
    if kernel_caches:
        hits_f = gauge(
            "repro_service_kernel_cache_hits_total",
            "counter",
            "kernel memo cache hits since service start",
        )
        misses_f = gauge(
            "repro_service_kernel_cache_misses_total",
            "counter",
            "kernel memo cache misses since service start",
        )
        rate_f = gauge(
            "repro_service_kernel_cache_hit_rate",
            "gauge",
            "kernel memo cache lifetime hit fraction",
        )
        size_f = gauge(
            "repro_service_kernel_cache_size",
            "gauge",
            "entries currently resident per kernel cache",
        )
        for cache_name in sorted(kernel_caches):
            stats = kernel_caches[cache_name]
            labels = {"cache": cache_name}
            hits = stats.get("hits", 0)
            misses = stats.get("misses", 0)
            hits_f.add(hits, labels)
            misses_f.add(misses, labels)
            total = hits + misses
            rate_f.add(
                stats.get("hit_rate", hits / total if total else 0.0),
                labels,
            )
            size_f.add(stats.get("size", 0), labels)

    # Cluster router gauges (the counters — worker restarts, deaths,
    # breaker opens, replays — flow through the Metrics snapshot above
    # as repro_cluster_*_total; emitting them here too would double
    # count, since the registry sums colliding samples).
    cluster = service.get("cluster") or {}
    if cluster:
        gauge(
            "repro_cluster_degraded",
            "gauge",
            "degradation ladder level: 0 healthy, 1 shedding ad-hoc "
            "goals, 2 cache-only, 3 draining",
        ).add(cluster.get("degraded", 0))
        supervisor = cluster.get("supervisor") or {}
        gauge(
            "repro_cluster_workers",
            "gauge",
            "configured worker processes",
        ).add(supervisor.get("workers", 0))
        gauge(
            "repro_cluster_workers_healthy",
            "gauge",
            "worker processes currently routable",
        ).add(supervisor.get("healthy", 0))
        up = gauge(
            "repro_cluster_worker_up",
            "gauge",
            "1 while the worker slot is healthy and routable",
        )
        for index, state in sorted(
            (supervisor.get("states") or {}).items()
        ):
            up.add(
                1 if state.get("state") == "healthy" else 0,
                {"worker": str(index)},
            )
        gauge(
            "repro_cluster_inflight_jobs",
            "gauge",
            "router jobs admitted but not yet terminal",
        ).add(cluster.get("inflight", 0))
        jobs_f = gauge(
            "repro_cluster_jobs",
            "gauge",
            "router jobs by lifecycle state",
        )
        for state, count in sorted((cluster.get("jobs") or {}).items()):
            jobs_f.add(count, {"state": state})
        journal = cluster.get("journal") or {}
        if journal:
            gauge(
                "repro_cluster_journal_pending",
                "gauge",
                "journaled jobs with no terminal event (replayed on "
                "restart)",
            ).add(journal.get("pending", 0))
            gauge(
                "repro_cluster_journal_jobs",
                "gauge",
                "jobs ever admitted to the journal",
            ).add(journal.get("jobs", 0))
            gauge(
                "repro_cluster_journal_quarantined_lines",
                "gauge",
                "corrupt journal lines quarantined at load",
            ).add(journal.get("quarantined", 0))
