"""Structured tracing: span trees for whole proof searches.

The aggregate :class:`~repro.eval.instrumentation.Metrics` counters
answer *how much* — total generation seconds, verdict histograms — but
not *what each search actually did*: which goals were expanded in what
order, why candidates were rejected, where the fuel and the wall-clock
went.  The paper's failure-mode analyses (Table 2, Figure 2) need that
per-attempt story, so this module records it as a **span tree**:

* a :class:`Tracer` mints one *trace* (one proof attempt, one service
  job) and hands out :class:`Span` context managers.  Spans nest —
  ``task → search → expand → tactic`` — via an internal stack, carry a
  free-form attribute dict, and record start offset + elapsed seconds
  against the tracer's monotonic clock.
* finished spans accumulate on the tracer; :meth:`Tracer.export`
  returns them as plain JSON-able dicts (picklable, so process-pool
  workers ship them back to the sweep parent on the
  :class:`~repro.eval.executor.TaskResult`).
* a :class:`JsonlSink` appends span dicts to a JSONL file under a
  lock, so concurrent service jobs can share one trace file without
  tearing lines.  ``repro trace FILE`` renders it (:mod:`.render`).

**The no-op default.**  Tracing must be observationally free when off:
eval stores stay byte-identical, and the search hot loop must not pay
for rendering goal previews nobody asked for.  Every traced layer
therefore defaults to :data:`NULL_TRACER`, whose ``span()`` returns a
shared singleton without allocating, and guards any *expensive
attribute computation* (goal rendering, message truncation) behind
``tracer.enabled``.  This module imports nothing from the rest of
``repro`` — it sits below every layer that uses it, keeping the
dependency graph acyclic (same discipline as the duck-typed metrics
sink).
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "JsonlSink",
    "load_spans",
]


class Span:
    """One timed, attributed node of a trace tree.

    Use as a context manager; attributes added via :meth:`set` while
    the span is open (or after — the dict is exported lazily)."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "start",
        "elapsed",
        "attrs",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        start: float,
        attrs: Dict[str, object],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.elapsed: Optional[float] = None
        self.attrs = attrs

    def set(self, **attrs: object) -> "Span":
        """Attach attributes (chainable)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self)
        return False

    def to_json(self, trace_id: str) -> dict:
        return {
            "trace": trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": round(self.start, 6),
            "elapsed": round(self.elapsed or 0.0, 6),
            "attrs": self.attrs,
        }


class _NullSpan:
    """The shared do-nothing span (no allocation per call)."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class NullTracer:
    """The zero-overhead default: every span is the shared no-op.

    ``enabled`` is the guard traced code checks before computing
    expensive span attributes (goal previews and the like)."""

    __slots__ = ()

    enabled = False

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def export(self) -> List[dict]:
        return []


_NULL_SPAN = _NullSpan()

#: The module-wide no-op tracer every traced layer defaults to.
NULL_TRACER = NullTracer()


class Tracer:
    """Records one trace (a span tree) against a monotonic clock.

    A tracer is *single-writer*: one proof attempt / service job owns
    it for the duration (the span stack assumes properly nested use
    from one thread).  The lock only guards the finished-span list so
    :meth:`export` may be called from another thread afterwards.
    """

    enabled = True

    def __init__(
        self,
        trace_id: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._seq = 0
        self._stack: List[Span] = []
        self._finished: List[Span] = []

    def span(self, name: str, **attrs: object) -> Span:
        """Open a child of the innermost open span (context manager)."""
        self._seq += 1
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            self,
            name,
            self._seq,
            parent,
            self.clock() - self._epoch,
            attrs,
        )
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.elapsed = (self.clock() - self._epoch) - span.start
        # Pop to (and including) the finishing span; mis-nested exits
        # close the abandoned inner spans rather than corrupting later
        # parentage.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        with self._lock:
            self._finished.append(span)

    def export(self) -> List[dict]:
        """Finished spans as JSON-able dicts, in chronological order."""
        with self._lock:
            spans = sorted(self._finished, key=lambda s: s.span_id)
            return [span.to_json(self.trace_id) for span in spans]


class JsonlSink:
    """Thread-safe append-only JSONL writer for span dicts.

    One sink is shared by every job of a traced server (and by every
    task of a traced sweep); the lock keeps concurrent flushes from
    interleaving lines.  Lines are one span each — the renderer groups
    them back into traces by their ``trace`` field.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self.spans_written = 0

    def write(self, spans: Iterable[dict]) -> int:
        """Append span dicts; returns how many were written."""
        lines = [
            json.dumps(span, sort_keys=True, separators=(",", ":"))
            for span in spans
        ]
        if not lines:
            return 0
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + "\n")
                handle.flush()
            self.spans_written += len(lines)
        return len(lines)


def load_spans(path) -> List[dict]:
    """Read a trace JSONL file back (skipping blank/torn lines)."""
    spans: List[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a killed run
            if isinstance(obj, dict) and "span" in obj:
                spans.append(obj)
    return spans
