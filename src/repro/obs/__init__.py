"""Observability: structured search tracing + Prometheus exposition.

The stack's aggregate metrics (:mod:`repro.eval.instrumentation`) say
how much time and fuel a sweep spent; this package records *what each
search actually did* and exports operational metrics a monitoring
stack can scrape.  DESIGN.md §7.

* :mod:`repro.obs.trace` — :class:`Tracer`/:class:`Span` trees with a
  zero-overhead no-op default, a thread-safe JSONL sink, and loaders;
* :mod:`repro.obs.render` — the ``repro trace`` tree/summary renderer;
* :mod:`repro.obs.prometheus` — text-format exposition of the eval
  metrics + service gauges with counter-vs-gauge typing.

This package imports nothing from the rest of ``repro``: every layer
(kernel-adjacent checker, search engine, runner, service) may depend
on it without cycles, exactly like the duck-typed metrics sink.
"""

from repro.obs.prometheus import render_prometheus
from repro.obs.render import (
    group_traces,
    render_summary,
    render_trace,
    stage_summary,
)
from repro.obs.trace import (
    NULL_TRACER,
    JsonlSink,
    NullTracer,
    Span,
    Tracer,
    load_spans,
)

__all__ = [
    "Tracer",
    "Span",
    "NullTracer",
    "NULL_TRACER",
    "JsonlSink",
    "load_spans",
    "group_traces",
    "render_trace",
    "render_summary",
    "stage_summary",
    "render_prometheus",
]
