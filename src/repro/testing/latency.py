"""Simulated per-request model latency (benchmark harness).

The simulated models answer in microseconds, which hides exactly the
cost micro-batching exists to amortize: a real GPT-4o/Gemini endpoint
charges a network round-trip and per-request service overhead on
*every* ``generate`` call, regardless of how little work it carries.

:class:`LatencyGenerator` restores that cost structure: each
``generate`` call charges ``overhead`` seconds before answering, and a
``generate_batch`` call charges ``overhead`` **once for the whole
batch** — the shape of a batch completion API, where n requests share
one round-trip.  By default the charge is *serialized* (an internal
gate admits one request at a time), modelling the requests-per-minute
rate limit every real endpoint enforces: with it, request overhead
bounds system throughput at ``1/overhead`` dispatches per second no
matter how many searches run concurrently — which is precisely the
bound micro-batching lifts.  Results are untouched (the wrapper
delegates to the inner generator, preserving the element-wise
determinism contract), so outcome records are identical with or
without the wrapper; only wall clock differs.

Used by ``scripts/service_loadgen.py`` and the service benchmarks to
measure batched vs unbatched throughput under realistic per-query
overhead.  The sleep function is injectable for fake-clock tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Sequence

from repro.llm.interface import (
    Candidate,
    GenerationRequest,
    TacticGenerator,
    generate_batch,
)

__all__ = ["LatencyGenerator"]


class LatencyGenerator:
    """Adds a fixed per-request overhead to an inner generator."""

    def __init__(
        self,
        inner: TacticGenerator,
        overhead: float,
        sleep: Callable[[float], None] = time.sleep,
        serialize: bool = True,
    ) -> None:
        if overhead < 0:
            raise ValueError("overhead must be >= 0")
        self.inner = inner
        self.overhead = overhead
        self._sleep = sleep
        self.serialize = serialize
        self.name = inner.name
        self.context_window = inner.context_window
        self.provides_log_probs = getattr(inner, "provides_log_probs", False)
        #: Round-trips charged so far (one per call, solo or batch).
        self.round_trips = 0
        self._gate = threading.Lock()

    def _charge(self) -> None:
        self.round_trips += 1
        if not self.overhead:
            return
        if self.serialize:
            # One request in flight at a time: the endpoint's rate
            # limit, not each caller's private wait.
            with self._gate:
                self._sleep(self.overhead)
        else:
            self._sleep(self.overhead)

    def generate(self, prompt: str, k: int) -> List[Candidate]:
        self._charge()
        return self.inner.generate(prompt, k)

    def generate_batch(
        self, requests: Sequence[GenerationRequest]
    ) -> List[List[Candidate]]:
        self._charge()
        return generate_batch(self.inner, requests)
