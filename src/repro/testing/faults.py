"""Seeded, deterministic fault injection for chaos sweeps.

A :class:`FaultPlan` describes *which* faults to inject and *how
often*; wrappers apply it to any generator or checker.  Every decision
is a pure function of ``(plan.seed, wrapper context, operation
payload, attempt number)`` — no RNG state, no wall clock — so a chaos
sweep is bit-reproducible: the same plan injects the same faults at
the same points regardless of executor backend, worker count, or task
order.

Plans come from the CLI (``--faults SPEC``) or the environment
(``REPRO_FAULTS``), with a comma-separated ``key=value`` spec::

    seed=7,transient=0.2,ratelimit=0.1,stall=0.05,malformed=0.1

Fault kinds
-----------

* ``transient`` — the model call raises a retryable 5xx-style error;
* ``ratelimit`` — a 429-style error (retryable, longer backoff floor);
* ``stall`` — the call sleeps ``stall_seconds`` before answering (the
  resilient wrapper's per-query timeout turns a long stall into a
  retryable :class:`~repro.errors.GenerationTimeout`);
* ``malformed`` / ``truncate`` — the response payload is garbage or
  cut short and cannot be decoded into candidates (retryable: the
  corruption is transport-level, a re-query returns the intact body);
* ``crash`` — the *worker process* executing the task dies on its
  first attempt (``os._exit``); the executor's retry path must make
  this invisible;
* ``kill=<glob>`` — a *permanent* worker killer: every attempt of any
  task whose theorem name matches dies, so the sweep must finish with
  exactly those tasks recorded as ``CRASH``;
* ``initfail=1`` — the process-pool worker initializer itself raises,
  exercising the executor's actionable startup error.

Faulted model calls fail at most ``max_failures`` consecutive times
per prompt and then succeed, so a retrying client sees *transient*
faults (keep ``max_failures`` below the retry budget for
invisibility); ``kill`` and ``initfail`` are permanent by design.
"""

from __future__ import annotations

import fnmatch
import hashlib
import os
import time
from dataclasses import dataclass, fields
from pathlib import Path as _Path
from typing import Callable, Dict, List, Optional

from repro.errors import (
    MalformedResponseError,
    RateLimitError,
    TransientModelError,
)

__all__ = [
    "FaultPlan",
    "FaultyGenerator",
    "FaultyChecker",
    "ClusterFaultPlan",
    "FAULTS_ENV_VAR",
    "CLUSTER_FAULTS_ENV_VAR",
]

FAULTS_ENV_VAR = "REPRO_FAULTS"
CLUSTER_FAULTS_ENV_VAR = "REPRO_CLUSTER_FAULTS"

_RATE_KINDS = ("transient", "ratelimit", "stall", "malformed", "truncate")


def _fraction(*parts: object) -> float:
    """Deterministic hash of the parts, mapped to [0, 1)."""
    digest = hashlib.sha256(
        "\x1f".join(str(p) for p in parts).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """A seeded description of the faults to inject."""

    seed: int = 0
    transient: float = 0.0  # rate of 5xx-style failures
    ratelimit: float = 0.0  # rate of 429-style failures
    stall: float = 0.0  # rate of slow calls
    malformed: float = 0.0  # rate of undecodable payloads
    truncate: float = 0.0  # rate of cut-short payloads
    crash: float = 0.0  # rate of first-attempt worker deaths
    kill: Optional[str] = None  # permanent killer: theorem-name glob
    initfail: bool = False  # worker initializer raises
    stall_seconds: float = 0.05  # duration of one injected stall
    max_failures: int = 2  # consecutive model-call faults per prompt

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------

    @staticmethod
    def parse(spec: str) -> "FaultPlan":
        """Parse a ``key=value,key=value`` spec string."""
        kwargs: Dict[str, object] = {}
        casts = {f.name: f for f in fields(FaultPlan)}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" not in token:
                raise ValueError(
                    f"bad fault spec token {token!r} (expected key=value)"
                )
            key, _, value = token.partition("=")
            key = key.strip()
            value = value.strip()
            if key not in casts:
                known = ", ".join(sorted(casts))
                raise ValueError(
                    f"unknown fault kind {key!r}; known keys: {known}"
                )
            if key == "kill":
                kwargs[key] = value
            elif key == "initfail":
                kwargs[key] = value not in ("0", "false", "no", "")
            elif key in ("seed", "max_failures"):
                kwargs[key] = int(value)
            else:
                rate = float(value)
                if key in _RATE_KINDS + ("crash",) and not 0.0 <= rate <= 1.0:
                    raise ValueError(
                        f"fault rate {key}={rate} outside [0, 1]"
                    )
                kwargs[key] = rate
        return FaultPlan(**kwargs)  # type: ignore[arg-type]

    @staticmethod
    def from_spec(spec: Optional[str]) -> Optional["FaultPlan"]:
        """Build a plan from a spec string, falling back to the
        ``REPRO_FAULTS`` environment variable; None when neither is
        set (the common, fault-free case)."""
        if spec is None or spec == "":
            spec = os.environ.get(FAULTS_ENV_VAR) or None
        if spec is None:
            return None
        return FaultPlan.parse(spec)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def model_faults_active(self) -> bool:
        return any(getattr(self, kind) > 0.0 for kind in _RATE_KINDS)

    def model_fault_for(self, context: str, prompt: str) -> Optional[str]:
        """The fault kind scheduled for this model call, if any.

        The decision hashes (seed, context, prompt): one prompt is
        either always faulted (with one kind) or never — which is what
        makes retried queries meaningful.
        """
        frac = _fraction(self.seed, "model", context, prompt)
        floor = 0.0
        for kind in _RATE_KINDS:
            rate = getattr(self, kind)
            if rate and frac < floor + rate:
                return kind
            floor += rate
        return None

    def failures_for(self, context: str, prompt: str) -> int:
        """How many consecutive times this prompt's calls fail before
        succeeding (1..max_failures)."""
        if self.max_failures <= 1:
            return 1
        frac = _fraction(self.seed, "failures", context, prompt)
        return 1 + int(frac * self.max_failures) % self.max_failures

    def should_kill_worker(self, theorem: str, attempt: int) -> bool:
        """Whether the worker executing (theorem, attempt) should die.

        ``kill`` globs are permanent (every attempt dies — the task can
        only end as CRASH); ``crash``-rate deaths hit the first attempt
        only, so the executor's retry makes them invisible.
        """
        if self.kill and fnmatch.fnmatchcase(theorem, self.kill):
            return True
        if self.crash and attempt == 0:
            return _fraction(self.seed, "crash", theorem) < self.crash
        return False

    def describe(self) -> str:
        active = [
            f"{kind}={getattr(self, kind):g}"
            for kind in _RATE_KINDS + ("crash",)
            if getattr(self, kind)
        ]
        if self.kill:
            active.append(f"kill={self.kill}")
        if self.initfail:
            active.append("initfail=1")
        return f"FaultPlan(seed={self.seed}, {', '.join(active) or 'no-op'})"


class FaultyGenerator:
    """A :class:`TacticGenerator` that injects the plan's model faults.

    ``context`` should identify the task (theorem, model, setting) so
    two tasks querying with identical prompt text still draw
    independent fault decisions.
    """

    def __init__(
        self,
        inner,
        plan: FaultPlan,
        context: str = "",
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.context = context
        self.sleep = sleep
        self.name = inner.name
        self.context_window = inner.context_window
        self.provides_log_probs = getattr(inner, "provides_log_probs", False)
        self._failures_so_far: Dict[str, int] = {}

    def generate(self, prompt: str, k: int):
        kind = self.plan.model_fault_for(self.context, prompt)
        if kind is not None:
            key = hashlib.sha256(prompt.encode("utf-8")).hexdigest()
            done = self._failures_so_far.get(key, 0)
            if done < self.plan.failures_for(self.context, prompt):
                self._failures_so_far[key] = done + 1
                self._inject(kind)
        return self.inner.generate(prompt, k)

    def _inject(self, kind: str) -> None:
        if kind == "transient":
            raise TransientModelError(
                "injected transient failure (HTTP 500: upstream hiccup)"
            )
        if kind == "ratelimit":
            raise RateLimitError(
                "injected rate limit (HTTP 429: retry later)"
            )
        if kind == "stall":
            # A slow-but-eventually-successful call: the injected sleep
            # burns wall-clock, then the call proceeds normally.  A
            # resilient client whose per-query budget is smaller than
            # the stall classifies it as a GenerationTimeout and
            # retries.
            self.sleep(self.plan.stall_seconds)
            return
        if kind == "malformed":
            raise MalformedResponseError(
                'injected malformed payload: "{\\"candidates\\": [\\"appl'
            )
        if kind == "truncate":
            raise MalformedResponseError(
                "injected truncated response (connection reset mid-body)"
            )
        raise AssertionError(f"unknown fault kind: {kind}")


@dataclass(frozen=True)
class ClusterFaultPlan:
    """Seeded faults at the *cluster* level: whole-worker deaths,
    shard stalls, and journal corruption.

    Unlike :class:`FaultPlan`'s ``kill`` (permanent by design — the
    task must end CRASH), a cluster ``kill_job`` is *recoverable*: the
    worker process executing a matching theorem dies ``kill_times``
    times and then succeeds, so the supervisor's restart + the
    router's re-dispatch must make the death invisible in the final
    records.  Death counting is cross-process (the worker that dies is
    not the one that retries), so it lives in marker files under a
    shared ``state_dir`` rather than in memory.

    Spec syntax mirrors :class:`FaultPlan` (``key=value,...``), read
    from ``--cluster-faults`` or ``REPRO_CLUSTER_FAULTS``::

        seed=7,kill_job=rev_*,kill_times=1,stall_job=app_*,stall_seconds=0.2

    ``corrupt_journal`` is consumed by the chaos *harness* (not the
    workers): it names the 0-based journal line the harness flips a
    byte in between runs, exercising quarantine-on-load.
    """

    seed: int = 0
    kill_job: Optional[str] = None  # theorem glob: worker dies mid-job
    kill_times: int = 1  # deaths before the job is allowed to finish
    stall_job: Optional[str] = None  # theorem glob: execution stalls
    stall_seconds: float = 0.2  # duration of one injected stall
    corrupt_journal: int = -1  # harness-side: journal line to corrupt

    @staticmethod
    def parse(spec: str) -> "ClusterFaultPlan":
        kwargs: Dict[str, object] = {}
        known = {f.name for f in fields(ClusterFaultPlan)}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" not in token:
                raise ValueError(
                    f"bad cluster fault token {token!r} (expected key=value)"
                )
            key, _, value = token.partition("=")
            key = key.strip()
            value = value.strip()
            if key not in known:
                raise ValueError(
                    f"unknown cluster fault {key!r}; known: "
                    f"{', '.join(sorted(known))}"
                )
            if key in ("kill_job", "stall_job"):
                kwargs[key] = value
            elif key in ("seed", "kill_times", "corrupt_journal"):
                kwargs[key] = int(value)
            else:
                kwargs[key] = float(value)
        return ClusterFaultPlan(**kwargs)  # type: ignore[arg-type]

    @staticmethod
    def from_spec(spec: Optional[str]) -> Optional["ClusterFaultPlan"]:
        if spec is None or spec == "":
            spec = os.environ.get(CLUSTER_FAULTS_ENV_VAR) or None
        if spec is None:
            return None
        return ClusterFaultPlan.parse(spec)

    def to_spec(self) -> str:
        """A spec string that parses back to this plan (worker handoff)."""
        parts = [f"seed={self.seed}"]
        if self.kill_job:
            parts.append(f"kill_job={self.kill_job}")
            parts.append(f"kill_times={self.kill_times}")
        if self.stall_job:
            parts.append(f"stall_job={self.stall_job}")
            parts.append(f"stall_seconds={self.stall_seconds:g}")
        if self.corrupt_journal >= 0:
            parts.append(f"corrupt_journal={self.corrupt_journal}")
        return ",".join(parts)

    # ------------------------------------------------------------------
    # Decisions (made inside worker processes)
    # ------------------------------------------------------------------

    def should_die(self, theorem: str, state_dir) -> bool:
        """Whether the worker executing ``theorem`` should die *now*.

        Marker files under ``state_dir`` count prior deaths: each True
        decision drops one marker first (exclusive create, so two
        workers racing the same theorem cannot double-count), and once
        ``kill_times`` markers exist the theorem executes normally —
        the recoverable-crash shape the recovery contract needs.
        """
        if not self.kill_job or not fnmatch.fnmatchcase(
            theorem, self.kill_job
        ):
            return False
        tag = hashlib.sha256(theorem.encode("utf-8")).hexdigest()[:12]
        root = _Path(state_dir)
        root.mkdir(parents=True, exist_ok=True)
        for death in range(self.kill_times):
            marker = root / f"killed-{tag}-{death}"
            try:
                with open(marker, "x", encoding="utf-8"):
                    pass
                return True
            except FileExistsError:
                continue  # this death already happened; try the next
        return False

    def stall_for(self, theorem: str) -> float:
        """Injected execution stall (seconds) for ``theorem``."""
        if self.stall_job and fnmatch.fnmatchcase(theorem, self.stall_job):
            return self.stall_seconds
        return 0.0

    def describe(self) -> str:
        active = []
        if self.kill_job:
            active.append(
                f"kill_job={self.kill_job} x{self.kill_times}"
            )
        if self.stall_job:
            active.append(
                f"stall_job={self.stall_job} ({self.stall_seconds:g}s)"
            )
        if self.corrupt_journal >= 0:
            active.append(f"corrupt_journal={self.corrupt_journal}")
        return (
            f"ClusterFaultPlan(seed={self.seed}, "
            f"{', '.join(active) or 'no-op'})"
        )


class FaultyChecker:
    """A checker wrapper that injects stalls into tactic validation.

    Used to drive the deadline-enforcement paths: with a shared fake
    clock whose ``sleep`` advances it, an injected stall makes the
    checker's own :class:`~repro.deadline.Deadline` expire and the
    verdict come back TIMEOUT — no real time passes in tests.
    """

    def __init__(
        self,
        inner,
        plan: FaultPlan,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.sleep = sleep

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def check(self, state, tactic_text: str, seen_keys=None):
        if self.plan.stall and _fraction(
            self.plan.seed, "checker", tactic_text
        ) < self.plan.stall:
            self.sleep(self.plan.stall_seconds)
        return self.inner.check(state, tactic_text, seen_keys=seen_keys)
