"""Chaos-engineering utilities: seeded, deterministic fault injection.

Public surface: :class:`~repro.testing.faults.FaultPlan` and the
:class:`~repro.testing.faults.FaultyGenerator` /
:class:`~repro.testing.faults.FaultyChecker` wrappers.
"""

from repro.testing.faults import (
    FaultPlan,
    FaultyChecker,
    FaultyGenerator,
    FAULTS_ENV_VAR,
)

__all__ = [
    "FaultPlan",
    "FaultyChecker",
    "FaultyGenerator",
    "FAULTS_ENV_VAR",
]
