"""Chaos-engineering utilities: seeded, deterministic fault injection.

Public surface: :class:`~repro.testing.faults.FaultPlan` and the
:class:`~repro.testing.faults.FaultyGenerator` /
:class:`~repro.testing.faults.FaultyChecker` wrappers, plus
:class:`~repro.testing.faults.ClusterFaultPlan` for cluster-level
faults (whole-worker deaths, shard stalls, journal corruption).
"""

from repro.testing.faults import (
    ClusterFaultPlan,
    CLUSTER_FAULTS_ENV_VAR,
    FaultPlan,
    FaultyChecker,
    FaultyGenerator,
    FAULTS_ENV_VAR,
)

__all__ = [
    "ClusterFaultPlan",
    "CLUSTER_FAULTS_ENV_VAR",
    "FaultPlan",
    "FaultyChecker",
    "FaultyGenerator",
    "FAULTS_ENV_VAR",
]
