"""Parser for the kernel's Coq-like concrete syntax.

``parse_term`` produces a *raw* term: every identifier is a
:class:`Var`, the overloaded ``*`` becomes the placeholder constant
``_star``, and equality carries no type.  Elaboration
(:mod:`repro.kernel.typecheck`) resolves identifiers against the
signature, disambiguates ``*`` (nat multiplication vs. CHL separating
conjunction), and fills in types.  ``parse_statement`` runs both
stages.

The lexer is shared with the tactic-script parser
(:mod:`repro.tactics.script`).

Grammar sketch (loosest to tightest)::

    term     := 'forall' binders ',' term | 'exists' binders ',' term
              | 'fun' binders '=>' term | impl
    impl     := or  ('->' impl)?                    -- right
    or       := and ('\\/' or)?                     -- right
    and      := not ('/\\' and)?                    -- right
    not      := '~' not | cmp
    cmp      := cons (('='|'<>'|'<='|'<'|'|->'|'=p=>') cons)?
    cons     := add (('::'|'++') cons)?             -- right
    add      := mul (('+'|'-') mul)*                -- left
    mul      := appl ('*' appl)*                    -- right (see pretty)
    appl     := atom atom+ | atom
    atom     := ident | numeral | 'True' | 'False' | '(' term ')'

Binder annotations of type ``Type`` declare *type variables* (used by
polymorphic statements such as ``forall (T : Type) (l : list T), ...``)
and produce no term-level binder, mirroring how the kernel treats
polymorphism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.errors import ParseError
from repro.kernel.terms import (
    And,
    Const,
    Eq,
    Exists,
    FALSE,
    Forall,
    Impl,
    Lam,
    Or,
    TRUE,
    Term,
    Var,
    app,
    napp,
    nat_lit,
    neg,
)
from repro.kernel.types import PROP, TArrow, TCon, TVar, Type

__all__ = ["Token", "Lexer", "TermParser", "parse_term", "parse_type", "parse_statement"]

# Longest-match-first symbol table.
_SYMBOLS = [
    "=p=>",
    "|->",
    "->",
    "=>",
    "::",
    "++",
    "/\\",
    "\\/",
    "<>",
    "<=",
    ">=",
    "||",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ",",
    ";",
    ":",
    ".",
    "=",
    "<",
    ">",
    "~",
    "+",
    "-",
    "*",
    "|",
    "!",
    "@",
    "?",
]


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'num' | 'sym' | 'eof'
    text: str
    pos: int


class Lexer:
    """A simple maximal-munch lexer shared by term and tactic parsing."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = self._scan(text)
        self.index = 0

    @staticmethod
    def _scan(text: str) -> List[Token]:
        tokens: List[Token] = []
        i = 0
        n = len(text)
        while i < n:
            ch = text[i]
            if ch.isspace():
                i += 1
                continue
            if ch == "(" and text.startswith("(*", i):
                # Coq comment; nested comments supported.
                depth = 1
                i += 2
                while i < n and depth:
                    if text.startswith("(*", i):
                        depth += 1
                        i += 2
                    elif text.startswith("*)", i):
                        depth -= 1
                        i += 2
                    else:
                        i += 1
                continue
            if ch.isalpha() or ch == "_":
                start = i
                while i < n and (text[i].isalnum() or text[i] in "_'"):
                    i += 1
                tokens.append(Token("ident", text[start:i], start))
                continue
            if ch.isdigit():
                start = i
                while i < n and text[i].isdigit():
                    i += 1
                tokens.append(Token("num", text[start:i], start))
                continue
            for sym in _SYMBOLS:
                if text.startswith(sym, i):
                    tokens.append(Token("sym", sym, i))
                    i += len(sym)
                    break
            else:
                raise ParseError(f"unexpected character {ch!r}", i)
        tokens.append(Token("eof", "", n))
        return tokens

    def peek(self, ahead: int = 0) -> Token:
        j = min(self.index + ahead, len(self.tokens) - 1)
        return self.tokens[j]

    def next(self) -> Token:
        tok = self.tokens[self.index]
        if tok.kind != "eof":
            self.index += 1
        return tok

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.next()
        if tok.kind != kind or (text is not None and tok.text != text):
            wanted = text or kind
            raise ParseError(f"expected {wanted!r}, got {tok.text!r}", tok.pos)
        return tok

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.next()
        return None

    def at_eof(self) -> bool:
        return self.peek().kind == "eof"


_CMP_OPS = {"=", "<>", "<=", "<", "=p=>"}
_KEYWORDS = {"forall", "exists", "fun", "True", "False"}


class TermParser:
    def __init__(self, lexer: Lexer, type_vars: Set[str]) -> None:
        self.lx = lexer
        self.type_vars = set(type_vars)

    # -- entry ---------------------------------------------------------

    def term(self) -> Term:
        tok = self.lx.peek()
        if tok.kind == "ident" and tok.text == "forall":
            self.lx.next()
            return self._quantified(Forall)
        if tok.kind == "ident" and tok.text == "exists":
            self.lx.next()
            return self._quantified(Exists)
        if tok.kind == "ident" and tok.text == "fun":
            self.lx.next()
            binders = self._binders(stop="=>")
            self.lx.expect("sym", "=>")
            body = self.term()
            for name, ty in reversed(binders):
                body = Lam(name, ty, body)
            return body
        return self._impl()

    def _quantified(self, cls) -> Term:
        binders = self._binders(stop=",")
        self.lx.expect("sym", ",")
        body = self.term()
        for name, ty in reversed(binders):
            if ty == TCon("Type"):
                # Type binder: registers a type variable, no term binder.
                continue
            body = cls(name, ty, body)
        return body

    def _binders(self, stop: str) -> List[Tuple[str, Optional[Type]]]:
        """Parse binder groups until the stop symbol (not consumed)."""
        binders: List[Tuple[str, Optional[Type]]] = []
        while True:
            tok = self.lx.peek()
            if tok.kind == "sym" and tok.text == stop:
                break
            if tok.kind == "sym" and tok.text == "(":
                self.lx.next()
                names = [self.lx.expect("ident").text]
                while self.lx.peek().kind == "ident":
                    names.append(self.lx.next().text)
                self.lx.expect("sym", ":")
                ty = self.type_()
                self.lx.expect("sym", ")")
                self._register(names, ty, binders)
            elif tok.kind == "ident":
                names = [self.lx.next().text]
                while self.lx.peek().kind == "ident":
                    names.append(self.lx.next().text)
                ty: Optional[Type] = None
                if self.lx.accept("sym", ":"):
                    ty = self.type_()
                self._register(names, ty, binders)
            else:
                raise ParseError(f"bad binder at {tok.text!r}", tok.pos)
        if not binders:
            tok = self.lx.peek()
            raise ParseError("empty binder list", tok.pos)
        return binders

    def _register(
        self,
        names: List[str],
        ty: Optional[Type],
        binders: List[Tuple[str, Optional[Type]]],
    ) -> None:
        for name in names:
            if ty == TCon("Type"):
                self.type_vars.add(name)
            binders.append((name, ty))

    # -- operator levels -------------------------------------------------

    def _impl(self) -> Term:
        lhs = self._or()
        if self.lx.accept("sym", "->"):
            rhs = self._impl_rhs()
            return Impl(lhs, rhs)
        return lhs

    def _impl_rhs(self) -> Term:
        # The right side of -> may itself be a quantifier.
        tok = self.lx.peek()
        if tok.kind == "ident" and tok.text in ("forall", "exists", "fun"):
            return self.term()
        return self._impl()

    def _or(self) -> Term:
        lhs = self._and()
        if self.lx.accept("sym", "\\/"):
            return Or(lhs, self._quant_or(self._or))
        return lhs

    def _and(self) -> Term:
        lhs = self._not()
        if self.lx.accept("sym", "/\\"):
            return And(lhs, self._quant_or(self._and))
        return lhs

    def _quant_or(self, fallback):
        # Quantifiers extend to the right of a connective, as in Coq's
        # ``P \/ exists x, Q``.
        tok = self.lx.peek()
        if tok.kind == "ident" and tok.text in ("forall", "exists", "fun"):
            return self.term()
        return fallback()

    def _not(self) -> Term:
        if self.lx.accept("sym", "~"):
            return neg(self._not())
        return self._cmp()

    def _cmp(self) -> Term:
        lhs = self._cons()
        tok = self.lx.peek()
        if tok.kind == "sym" and tok.text in _CMP_OPS:
            self.lx.next()
            rhs = self._cons()
            if tok.text == "=":
                return Eq(None, lhs, rhs)
            if tok.text == "<>":
                return neg(Eq(None, lhs, rhs))
            if tok.text == "<=":
                return napp("le", lhs, rhs)
            if tok.text == "<":
                return napp("lt", lhs, rhs)
            if tok.text == "=p=>":
                return napp("pimpl", lhs, rhs)
        return lhs

    def _cons(self) -> Term:
        lhs = self._add()
        tok = self.lx.peek()
        if tok.kind == "sym" and tok.text in ("::", "++"):
            self.lx.next()
            rhs = self._cons()
            name = "cons" if tok.text == "::" else "app"
            return napp(name, lhs, rhs)
        return lhs

    def _add(self) -> Term:
        lhs = self._mul()
        while True:
            tok = self.lx.peek()
            if tok.kind == "sym" and tok.text in ("+", "-"):
                self.lx.next()
                rhs = self._mul()
                name = "add" if tok.text == "+" else "sub"
                lhs = napp(name, lhs, rhs)
            else:
                return lhs

    def _mul(self) -> Term:
        lhs = self._ptsto()
        if self.lx.accept("sym", "*"):
            rhs = self._mul()
            return napp("_star", lhs, rhs)
        return lhs

    def _ptsto(self) -> Term:
        # ``|->`` binds tighter than ``*`` so that FSCQ-style
        # ``F * a |-> v`` reads as ``F * (a |-> v)``.
        lhs = self._appl()
        if self.lx.accept("sym", "|->"):
            rhs = self._appl()
            return napp("ptsto", lhs, rhs)
        return lhs

    def _appl(self) -> Term:
        head = self._atom()
        args = []
        while self._at_atom():
            args.append(self._atom())
        return app(head, *args) if args else head

    def _at_atom(self) -> bool:
        tok = self.lx.peek()
        if tok.kind in ("num",):
            return True
        if tok.kind == "ident":
            return tok.text not in ("forall", "exists", "fun")
        return tok.kind == "sym" and tok.text == "("

    def _atom(self) -> Term:
        tok = self.lx.next()
        if tok.kind == "num":
            return nat_lit(int(tok.text))
        if tok.kind == "ident":
            if tok.text == "True":
                return TRUE
            if tok.text == "False":
                return FALSE
            if tok.text in ("forall", "exists", "fun"):
                raise ParseError(f"{tok.text} not allowed here", tok.pos)
            return Var(tok.text)
        if tok.kind == "sym" and tok.text == "(":
            inner = self.term()
            self.lx.expect("sym", ")")
            return inner
        raise ParseError(f"unexpected token {tok.text!r}", tok.pos)

    # -- types -----------------------------------------------------------

    def type_(self) -> Type:
        lhs = self._type_app()
        if self.lx.accept("sym", "->"):
            return TArrow(lhs, self.type_())
        return lhs

    def _type_app(self) -> Type:
        head = self.lx.peek()
        if head.kind == "sym" and head.text == "(":
            self.lx.next()
            inner = self.type_()
            self.lx.expect("sym", ")")
            # A parenthesized type can still head an application,
            # but only constructors take arguments in our type language.
            return inner
        name = self.lx.expect("ident").text
        args: List[Type] = []
        while True:
            tok = self.lx.peek()
            if tok.kind == "ident" and tok.text not in ("forall", "exists", "fun"):
                self.lx.next()
                args.append(self._type_name(tok.text))
            elif tok.kind == "sym" and tok.text == "(":
                self.lx.next()
                args.append(self.type_())
                self.lx.expect("sym", ")")
            else:
                break
        if not args:
            return self._type_name(name)
        return TCon(name, tuple(args))

    def _type_name(self, name: str) -> Type:
        if name in self.type_vars:
            return TVar(name)
        return TCon(name)


def parse_term(
    text: str,
    type_vars: Tuple[str, ...] = (),
) -> Term:
    """Parse a raw (unelaborated) term from concrete syntax."""
    lexer = Lexer(text)
    parser = TermParser(lexer, set(type_vars))
    term = parser.term()
    if not lexer.at_eof():
        tok = lexer.peek()
        raise ParseError(f"trailing input at {tok.text!r}", tok.pos)
    return term


def parse_type(text: str, type_vars: Tuple[str, ...] = ()) -> Type:
    """Parse a type from concrete syntax."""
    lexer = Lexer(text)
    parser = TermParser(lexer, set(type_vars))
    ty = parser.type_()
    if not lexer.at_eof():
        tok = lexer.peek()
        raise ParseError(f"trailing input at {tok.text!r}", tok.pos)
    return ty


def parse_statement(env, text: str, type_vars: Tuple[str, ...] = ()) -> Term:
    """Parse *and elaborate* a closed statement against ``env``."""
    from repro.kernel.typecheck import elaborate_statement

    return elaborate_statement(env, parse_term(text, type_vars))
