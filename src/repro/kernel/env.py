"""The global environment: every declaration visible to a proof.

An :class:`Environment` is the kernel-side image of a Coq project: a
signature of constants, the inductive datatypes and predicates, the
transparent/recursive definitions, proved lemmas and axioms, and the
hint databases used by ``auto``/``eauto``.

The corpus loader (:mod:`repro.corpus.loader`) builds one environment
incrementally in file-dependency order, exactly as ``coqc`` would
process FSCQ's files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import EnvironmentError_
from repro.kernel.definitions import Abbreviation, Fixpoint
from repro.kernel.inductives import Inductive, InductivePred, PredConstructor
from repro.kernel.signature import ConstInfo, ConstKind, Signature
from repro.kernel.terms import Term
from repro.kernel.types import PROP, TCon, Type, arrows

__all__ = ["LemmaInfo", "Environment"]


@dataclass(frozen=True)
class LemmaInfo:
    """A named proved statement (or trusted axiom)."""

    name: str
    statement: Term
    is_axiom: bool = False


class Environment:
    """Mutable global environment for kernel declarations."""

    def __init__(self) -> None:
        self.signature = Signature()
        self.inductives: Dict[str, Inductive] = {}
        self.preds: Dict[str, InductivePred] = {}
        self.abbreviations: Dict[str, Abbreviation] = {}
        self.fixpoints: Dict[str, Fixpoint] = {}
        self.lemmas: Dict[str, LemmaInfo] = {}
        self.opaque_types: List[str] = []  # declared base types (valu, pred...)
        self.hint_resolve: List[str] = []  # lemma names for auto/eauto
        self.hint_constructors: List[str] = []  # pred names for auto/eauto
        # Bumped whenever a declaration that can change reduction
        # behaviour lands (constructors, definitions, fixpoints); the
        # reduction memo keys on (env, generation, term) so entries
        # cached mid-load never survive a later declaration.
        self.generation: int = 0

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def declare_type(self, name: str) -> None:
        """Declare an opaque base type (e.g. ``valu``, ``pred``)."""
        if name in self.opaque_types:
            raise EnvironmentError_(f"duplicate type: {name}")
        self.opaque_types.append(name)

    def declare_inductive(self, ind: Inductive) -> None:
        """Declare a datatype and register its constructors."""
        if ind.name in self.inductives:
            raise EnvironmentError_(f"duplicate inductive: {ind.name}")
        self.inductives[ind.name] = ind
        self.generation += 1
        for ctor in ind.constructors:
            self.signature.add(
                ConstInfo(
                    name=ctor.name,
                    ty=ind.constructor_type(ctor),
                    kind=ConstKind.CONSTRUCTOR,
                    parent=ind.name,
                )
            )

    def declare_pred(self, pred: InductivePred) -> None:
        """Declare an inductive predicate; its intro rules become lemmas."""
        if pred.name in self.preds:
            raise EnvironmentError_(f"duplicate predicate: {pred.name}")
        self.preds[pred.name] = pred
        self.signature.add(
            ConstInfo(name=pred.name, ty=pred.ty, kind=ConstKind.INDUCTIVE_PRED)
        )
        for ctor in pred.constructors:
            self._add_lemma(LemmaInfo(ctor.name, ctor.statement, is_axiom=True))

    def declare_abbreviation(self, abbr: Abbreviation) -> None:
        if abbr.name in self.abbreviations:
            raise EnvironmentError_(f"duplicate definition: {abbr.name}")
        self.abbreviations[abbr.name] = abbr
        self.generation += 1
        param_types = tuple(ty for _, ty in abbr.params)
        self.signature.add(
            ConstInfo(
                name=abbr.name,
                ty=arrows(*param_types, abbr.result_ty),
                kind=ConstKind.ABBREVIATION,
            )
        )

    def declare_fixpoint(self, fix: Fixpoint) -> None:
        if fix.name in self.fixpoints:
            raise EnvironmentError_(f"duplicate fixpoint: {fix.name}")
        self.fixpoints[fix.name] = fix
        self.generation += 1
        self.signature.add(
            ConstInfo(
                name=fix.name,
                ty=arrows(*fix.arg_types, fix.result_ty),
                kind=ConstKind.FIXPOINT,
            )
        )

    def declare_opaque(self, name: str, ty: Type) -> None:
        """Declare a constant with no computation rules (e.g. ``emp``)."""
        self.signature.add(ConstInfo(name=name, ty=ty, kind=ConstKind.OPAQUE))

    def add_axiom(self, name: str, statement: Term) -> None:
        self._add_lemma(LemmaInfo(name, statement, is_axiom=True))

    def add_lemma(self, name: str, statement: Term) -> None:
        """Record a *proved* lemma (the script layer calls this on Qed)."""
        self._add_lemma(LemmaInfo(name, statement, is_axiom=False))

    def _add_lemma(self, info: LemmaInfo) -> None:
        if info.name in self.lemmas:
            raise EnvironmentError_(f"duplicate lemma: {info.name}")
        if info.name in self.signature:
            raise EnvironmentError_(f"lemma shadows constant: {info.name}")
        self.lemmas[info.name] = info

    # ------------------------------------------------------------------
    # Hint databases
    # ------------------------------------------------------------------

    def hint_resolve_add(self, *names: str) -> None:
        """``Hint Resolve``: make lemmas available to auto/eauto."""
        for name in names:
            if self.statement_of(name) is None:
                raise EnvironmentError_(f"hint for unknown lemma: {name}")
            if name not in self.hint_resolve:
                self.hint_resolve.append(name)

    def hint_constructors_add(self, *pred_names: str) -> None:
        """``Hint Constructors``: let auto apply a predicate's intro rules."""
        for name in pred_names:
            if name not in self.preds:
                raise EnvironmentError_(f"hint for unknown predicate: {name}")
            if name not in self.hint_constructors:
                self.hint_constructors.append(name)

    def auto_hints(self) -> List[Tuple[str, Term]]:
        """All (name, statement) pairs auto may apply, in declaration order."""
        hints: List[Tuple[str, Term]] = []
        for name in self.hint_resolve:
            statement = self.statement_of(name)
            assert statement is not None
            hints.append((name, statement))
        for pred_name in self.hint_constructors:
            for ctor in self.preds[pred_name].constructors:
                hints.append((ctor.name, ctor.statement))
        return hints

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def statement_of(self, name: str) -> Optional[Term]:
        """The statement of a lemma/axiom/intro-rule named ``name``."""
        info = self.lemmas.get(name)
        if info is not None:
            return info.statement
        return None

    def inductive_for_type(self, ty: Type) -> Optional[Inductive]:
        """The datatype declaration behind a :class:`TCon`, if any."""
        if isinstance(ty, TCon):
            return self.inductives.get(ty.name)
        return None

    def constructor_parent(self, const_name: str) -> Optional[Inductive]:
        """The inductive owning ``const_name`` when it is a constructor."""
        info = self.signature.get(const_name)
        if info is None or info.kind is not ConstKind.CONSTRUCTOR:
            return None
        assert info.parent is not None
        return self.inductives[info.parent]

    def is_constructor(self, const_name: str) -> bool:
        info = self.signature.get(const_name)
        return info is not None and info.kind is ConstKind.CONSTRUCTOR

    def all_lemma_names(self) -> List[str]:
        return list(self.lemmas)
