"""Arena of hash-consed term nodes addressed by integer ids.

The arena is the single constructor path behind :func:`~repro.kernel.
terms.intern`.  Every distinct term structure is admitted exactly once
and assigned a dense integer id; the node table maps an id to both a
structural key (tag + child ids, the hash-consing key) and the one
canonical :class:`~repro.kernel.terms.Term` object for that structure.
Consequences the hot paths rely on:

* **structural equality is id equality** — two interned terms are
  structurally equal iff they are the *same object* (same id), so
  duplicate detection, memo keys, and occurs checks never walk trees;
* **derived data lives in parallel arrays keyed by id** — structural
  hash (eager, O(1) per admitted node from child hashes), free-var
  set, meta set, and the alpha fingerprint (all lazy) are computed at
  most once per structure, not once per copy;
* **traversals are iterative** — interning and fingerprinting run as
  explicit work-stack loops over ids/nodes, so 5000-deep terms never
  hit Python's recursion limit.

Epoching: an arena is permanently tied to the
:func:`repro.kernel.cache.intern_epoch` value at its creation.
:func:`current` lazily retires the singleton when the epoch moves —
and because :func:`repro.kernel.cache.clear_caches` *defers* the epoch
bump while any :func:`~repro.kernel.cache.pinned` scope is held, a
concurrent search's live ids are never orphaned mid-flight: the arena
(and every id stamped on its terms) survives until the last pin is
released.  Stamps carry ``(_agen, _aid)`` integers rather than an
arena reference, so a retired arena is garbage-collected even while
terms interned in it are still alive.

Id-keyed memo tables outside this module (substitution/reduction
caches in :mod:`repro.kernel.subst` / :mod:`repro.kernel.reduction`)
include the arena generation in their keys: ids are only meaningful
within one generation.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.kernel import cache as _cache
from repro.kernel.terms import (
    App,
    And,
    Const,
    Eq,
    Exists,
    FalseP,
    Forall,
    Impl,
    Lam,
    Meta,
    Or,
    Term,
    TrueP,
    Var,
    free_var_set,
    meta_set,
    structural_hash,
    term_children,
)

__all__ = ["TermArena", "current", "intern_term", "intern_id", "term_of"]


class _ArenaStats:
    """Registry adapter: hit/miss counters for an arena-backed memo.

    Quacks like :class:`repro.kernel.cache.BoundedCache` for the
    stats/clear protocol — the data itself lives in the arena (retired
    wholesale on epoch bump), so :meth:`clear` only has to keep the
    counters, exactly like a ``BoundedCache.clear``.
    """

    __slots__ = ("name", "hits", "misses", "evictions")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        _cache._REGISTRY.append(self)

    def clear(self) -> None:  # data lives in the arena; nothing to drop
        pass

    def stats(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "hits": self.hits,
            "misses": self.misses,
            "size": _ARENA.size() if _ARENA is not None else 0,
            "capacity": 0,
            "evictions": self.evictions,
        }
        total = self.hits + self.misses
        out["hit_rate"] = self.hits / total if total else 0.0
        return out


_INTERN_STATS = _ArenaStats("intern")
_ALPHA_FP_STATS = _ArenaStats("alpha_fp")


class TermArena:
    """One generation's node table plus parallel derived-data arrays.

    Thread safety: the service's worker threads intern into the shared
    singleton concurrently, so *admission* (which must keep the node
    table and every parallel array aligned) is serialized on
    ``admit_lock`` with a double-checked table probe.  The hit paths
    stay lock-free: a table entry is published only after all parallel
    arrays hold the node (publish-last), and representatives are
    stamped ``_aid`` before ``_agen``, so an unlocked reader that
    observes a hit can always dereference it.
    """

    __slots__ = (
        "generation",
        "nodes",
        "terms",
        "table",
        "hashes",
        "fvs",
        "metas",
        "alpha_fp",
        "admit_lock",
    )

    def __init__(self, generation: int) -> None:
        self.generation = generation
        self.nodes: List[tuple] = []  # id -> structural key (tag + child ids)
        self.terms: List[Term] = []  # id -> canonical Term object
        self.table: Dict[tuple, int] = {}  # structural key -> id
        # Parallel derived arrays, keyed by id.
        self.hashes: List[int] = []  # structural hash (eager)
        self.fvs: List[Optional[FrozenSet[str]]] = []  # lazy
        self.metas: List[Optional[FrozenSet[int]]] = []  # lazy
        self.alpha_fp: List[Optional[int]] = []  # lazy (empty-env fp)
        self.admit_lock = threading.Lock()

    def size(self) -> int:
        return len(self.nodes)

    # -- interning ------------------------------------------------------

    def intern_id(self, term: Term) -> int:
        """The id of ``term``'s structure, admitting nodes as needed.

        Iterative post-order walk: a node is admitted only once all of
        its children carry a valid ``(_agen, _aid)`` stamp for this
        arena, so :meth:`_admit` reads child ids in O(1).
        """
        gen = self.generation
        d = term.__dict__
        if d.get("_agen") == gen:
            _INTERN_STATS.hits += 1
            return d["_aid"]
        stack = [term]
        while stack:
            t = stack[-1]
            td = t.__dict__
            if td.get("_agen") == gen:
                stack.pop()
                continue
            pending = [
                c
                for c in term_children(t)
                if c.__dict__.get("_agen") != gen
            ]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            self._admit(t)
        return d["_aid"]

    def intern_term(self, term: Term) -> Term:
        """The canonical representative of ``term``'s structure."""
        return self.terms[self.intern_id(term)]

    def term_of(self, tid: int) -> Term:
        """The canonical term for id ``tid``."""
        return self.terms[tid]

    def _admit(self, term: Term) -> int:
        """Intern one node whose children are already stamped."""
        key = self._node_key(term)
        tid = self.table.get(key)
        d = term.__dict__
        if tid is None:
            # Admission is the only compound mutation: the node table
            # and every parallel array must stay aligned, and two
            # threads admitting concurrently would both read the same
            # len(nodes) as their id.  Double-checked under the lock;
            # the table entry is published last so the lock-free hit
            # path above never sees an id its arrays don't yet hold.
            with self.admit_lock:
                tid = self.table.get(key)
                if tid is None:
                    _INTERN_STATS.misses += 1
                    rep = self._canonicalize(term)
                    tid = len(self.nodes)
                    self.nodes.append(key)
                    self.terms.append(rep)
                    self.hashes.append(structural_hash(rep))
                    self.fvs.append(None)
                    self.metas.append(None)
                    self.alpha_fp.append(None)
                    # Stamp the representative (_aid before _agen: an
                    # unlocked reader checks _agen first) and then
                    # publish.  The compatibility stamp `_interned` is
                    # read by the epoch/pinning tests: the arena
                    # generation *is* the intern epoch it was born
                    # under.
                    object.__setattr__(rep, "_aid", tid)
                    object.__setattr__(rep, "_agen", self.generation)
                    object.__setattr__(rep, "_interned", self.generation)
                    self.table[key] = tid
                else:
                    _INTERN_STATS.hits += 1
        else:
            _INTERN_STATS.hits += 1
        if d.get("_agen") != self.generation or d.get("_aid") != tid:
            object.__setattr__(term, "_aid", tid)
            object.__setattr__(term, "_agen", self.generation)
        return tid

    def _node_key(self, term: Term) -> tuple:
        """The hash-consing key: class tag, scalar payload, child ids."""
        cls = term.__class__
        d = term.__dict__
        if cls is Var:
            return ("v", term.name)
        if cls is Const:
            return ("c", term.name)
        if cls is App:
            return (
                ("a", term.fn.__dict__["_aid"])
                + tuple(a.__dict__["_aid"] for a in term.args)
            )
        if cls is Lam:
            return ("L", term.var, term.ty, term.body.__dict__["_aid"])
        if cls is Forall:
            return ("A", term.var, term.ty, term.body.__dict__["_aid"])
        if cls is Exists:
            return ("E", term.var, term.ty, term.body.__dict__["_aid"])
        if cls is Impl:
            return ("I", term.lhs.__dict__["_aid"], term.rhs.__dict__["_aid"])
        if cls is And:
            return ("&", term.lhs.__dict__["_aid"], term.rhs.__dict__["_aid"])
        if cls is Or:
            return ("|", term.lhs.__dict__["_aid"], term.rhs.__dict__["_aid"])
        if cls is Eq:
            return (
                "=",
                term.ty,
                term.lhs.__dict__["_aid"],
                term.rhs.__dict__["_aid"],
            )
        if cls is TrueP:
            return ("T",)
        if cls is FalseP:
            return ("F",)
        if cls is Meta:
            return ("m", term.uid, term.hint)
        raise AssertionError(f"unknown term node: {term!r}")

    def _canonicalize(self, term: Term) -> Term:
        """Rebuild ``term`` over canonical children (identity-preserving)."""
        cls = term.__class__
        terms = self.terms
        if cls is App:
            fn = terms[term.fn.__dict__["_aid"]]
            args = tuple(terms[a.__dict__["_aid"]] for a in term.args)
            if fn is term.fn and all(
                a is b for a, b in zip(args, term.args)
            ):
                return term
            return App(fn, args)
        if cls is Lam or cls is Forall or cls is Exists:
            body = terms[term.body.__dict__["_aid"]]
            if body is term.body:
                return term
            return cls(term.var, term.ty, body)
        if cls is Impl or cls is And or cls is Or:
            lhs = terms[term.lhs.__dict__["_aid"]]
            rhs = terms[term.rhs.__dict__["_aid"]]
            if lhs is term.lhs and rhs is term.rhs:
                return term
            return cls(lhs, rhs)
        if cls is Eq:
            lhs = terms[term.lhs.__dict__["_aid"]]
            rhs = terms[term.rhs.__dict__["_aid"]]
            if lhs is term.lhs and rhs is term.rhs:
                return term
            return Eq(term.ty, lhs, rhs)
        # Leaves are canonical by construction.
        return term

    # -- derived data (parallel arrays) ---------------------------------

    def hash_of(self, tid: int) -> int:
        return self.hashes[tid]

    def fvs_of(self, tid: int) -> FrozenSet[str]:
        """Free-variable set for id ``tid`` (lazy parallel array)."""
        val = self.fvs[tid]
        if val is None:
            val = free_var_set(self.terms[tid])
            self.fvs[tid] = val
        return val

    def metas_of(self, tid: int) -> FrozenSet[int]:
        """Metavariable-uid set for id ``tid`` (lazy parallel array)."""
        val = self.metas[tid]
        if val is None:
            val = meta_set(self.terms[tid])
            self.metas[tid] = val
        return val

    def alpha_fp_of(self, tid: int) -> int:
        """Alpha-invariant fingerprint of id ``tid`` (empty binder env).

        Iterative two-phase machine over nodes.  Value-identical to
        the pristine walk in :mod:`repro.kernel.subst` — bound
        variables hash by de Bruijn index, so a subterm closed with
        respect to the enclosing binders fingerprints the same at any
        position and its value memoizes in the ``alpha_fp`` array.
        """
        memo = self.alpha_fp
        cached = memo[tid]
        if cached is not None:
            _ALPHA_FP_STATS.hits += 1
            return cached
        _ALPHA_FP_STATS.misses += 1
        terms = self.terms
        _EMPTY: Dict[str, int] = {}
        # Frames: (False, tid, env, depth) to visit, (True, tid, env,
        # depth) to combine child fingerprints off the value stack.
        tasks: List[tuple] = [(False, tid, _EMPTY, 0)]
        vals: List[int] = []
        while tasks:
            combining, i, env, depth = tasks.pop()
            t = terms[i]
            cls = t.__class__
            if combining:
                if cls is App:
                    n = len(t.args)
                    child = vals[-(n + 1):]
                    del vals[-(n + 1):]
                    fp = hash(("a", n, child[0]) + tuple(child[1:]))
                elif cls is Lam or cls is Forall or cls is Exists:
                    tag = {"Lam": "L", "Forall": "A", "Exists": "E"}[
                        cls.__name__
                    ]
                    fp = hash((tag, vals.pop()))
                elif cls is Eq:
                    rhs = vals.pop()
                    fp = hash(("=", vals.pop(), rhs))
                else:  # Impl / And / Or
                    tag = {"Impl": "I", "And": "&", "Or": "|"}[cls.__name__]
                    rhs = vals.pop()
                    fp = hash((tag, vals.pop(), rhs))
                if not env:
                    memo[i] = fp
                vals.append(fp)
                continue
            if not env:
                hit = memo[i]
                if hit is not None:
                    vals.append(hit)
                    continue
            elif self.fvs_of(i).isdisjoint(env):
                # Closed w.r.t. the enclosing binders: the value is
                # position-independent; compute (and memoize) it in an
                # empty environment instead.
                tasks.append((False, i, _EMPTY, 0))
                continue
            if cls is Var:
                level = env.get(t.name)
                if level is None:
                    vals.append(hash(("v", t.name)))
                else:
                    vals.append(hash(("b", depth - level)))
            elif cls is Const:
                vals.append(hash(("c", t.name)))
            elif cls is TrueP:
                vals.append(hash("T!"))
            elif cls is FalseP:
                vals.append(hash("F!"))
            elif cls is Meta:
                vals.append(hash(("m", t.uid)))
            elif cls is App:
                tasks.append((True, i, env, depth))
                for a in reversed(t.args):
                    tasks.append((False, a.__dict__["_aid"], env, depth))
                tasks.append((False, t.fn.__dict__["_aid"], env, depth))
            elif cls is Lam or cls is Forall or cls is Exists:
                inner = dict(env)
                inner[t.var] = depth
                tasks.append((True, i, env, depth))
                tasks.append(
                    (False, t.body.__dict__["_aid"], inner, depth + 1)
                )
            elif cls is Impl or cls is And or cls is Or or cls is Eq:
                tasks.append((True, i, env, depth))
                tasks.append((False, t.rhs.__dict__["_aid"], env, depth))
                tasks.append((False, t.lhs.__dict__["_aid"], env, depth))
            else:
                raise AssertionError(f"unknown term node: {t!r}")
        return vals[0]


# ----------------------------------------------------------------------
# The singleton, retired lazily when the intern epoch moves
# ----------------------------------------------------------------------

_ARENA: Optional[TermArena] = None
_SWAP_LOCK = threading.Lock()


def current() -> TermArena:
    """The live arena for the current intern epoch.

    The swap is lazy: :func:`repro.kernel.cache.clear_caches` bumps
    the epoch (deferred while pins are held), and the next arena
    access retires the old generation.  Under an active ``pinned()``
    scope the epoch cannot move, so ids held by a concurrent search
    stay valid for the life of the pin.
    """
    global _ARENA
    epoch = _cache.intern_epoch()
    arena = _ARENA
    if arena is None or arena.generation != epoch:
        with _SWAP_LOCK:
            arena = _ARENA
            if arena is None or arena.generation != epoch:
                arena = TermArena(epoch)
                _ARENA = arena
    return arena


def intern_id(term: Term) -> int:
    return current().intern_id(term)


def intern_term(term: Term) -> Term:
    return current().intern_term(term)


def term_of(tid: int) -> Term:
    return current().term_of(tid)
