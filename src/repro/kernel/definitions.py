"""Defined constants: abbreviations and recursive fixpoints.

Two definition forms, matching how they compute:

* :class:`Abbreviation` — a transparent definition (Coq ``Definition``).
  ``unfold name`` replaces the constant with its body and
  beta-reduces; ``simpl`` ignores it unless the head must reduce.
  Example: ``incl l1 l2 := forall a, In a l1 -> In a l2``.

* :class:`Fixpoint` — a recursive definition given by pattern-matching
  equations (Coq ``Fixpoint``).  ``simpl`` rewrites with an equation
  when the scrutinized arguments are constructor-headed, which
  guarantees termination on well-founded data.  Example::

      app nil        l = l
      app (cons x xs) l = cons x (app xs l)

  Prop-valued fixpoints (``In``, ``disjoint``...) fit the same mould —
  their right-hand sides are propositions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.kernel.terms import App, Const, Term, Var, free_vars
from repro.kernel.types import Type

__all__ = ["Abbreviation", "FixEquation", "Fixpoint"]


@dataclass(frozen=True)
class Abbreviation:
    """A transparent non-recursive definition.

    ``params`` are the formal parameters (name, type); ``body`` may
    mention them as :class:`Var` nodes.  ``result_ty`` is the type of
    the body, so the constant's signature type is
    ``params -> result_ty``.
    """

    name: str
    params: Tuple[Tuple[str, Type], ...]
    body: Term
    result_ty: Type


@dataclass(frozen=True)
class FixEquation:
    """One pattern-matching equation of a fixpoint.

    ``patterns`` has one entry per formal parameter.  Each entry is a
    term built from constructors and variables (a linear pattern); a
    bare :class:`Var` matches anything and binds it in ``rhs``.
    """

    patterns: Tuple[Term, ...]
    rhs: Term

    def pattern_vars(self) -> Tuple[str, ...]:
        seen = []
        for pat in self.patterns:
            for name in sorted(free_vars(pat)):
                if name not in seen:
                    seen.append(name)
        return tuple(seen)


@dataclass(frozen=True)
class Fixpoint:
    """A recursive definition by equations.

    ``arg_types``/``result_ty`` give the constant's signature;
    ``equations`` are tried in order (first match wins), exactly like
    Coq's compiled ``match``.
    """

    name: str
    arg_types: Tuple[Type, ...]
    result_ty: Type
    equations: Tuple[FixEquation, ...]

    def __post_init__(self) -> None:
        for eq in self.equations:
            if len(eq.patterns) != len(self.arg_types):
                raise ValueError(
                    f"fixpoint {self.name}: equation arity "
                    f"{len(eq.patterns)} != {len(self.arg_types)}"
                )

    def arity(self) -> int:
        return len(self.arg_types)
