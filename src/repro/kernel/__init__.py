"""The proof kernel: terms, types, environments, goals, and reduction.

This package is the reproduction's stand-in for Coq itself (see
DESIGN.md §2).  Public surface:

* :mod:`repro.kernel.terms` / :mod:`repro.kernel.types` — ASTs.
* :mod:`repro.kernel.env` — global environments (projects).
* :mod:`repro.kernel.parser` / :mod:`repro.kernel.pretty` — concrete
  syntax in and out.
* :mod:`repro.kernel.goals` — sequents and proof states.
* :mod:`repro.kernel.reduction` — ``simpl``/``unfold``/weak-head.
* :mod:`repro.kernel.unify` — unification with metavariables.
"""

from repro.kernel.env import Environment, LemmaInfo
from repro.kernel.goals import Goal, HypDecl, ProofState, VarDecl, initial_state
from repro.kernel.parser import parse_statement, parse_term, parse_type
from repro.kernel.pretty import pp_term, pp_type
from repro.kernel.terms import Term
from repro.kernel.types import Type

__all__ = [
    "Environment",
    "LemmaInfo",
    "Goal",
    "HypDecl",
    "VarDecl",
    "ProofState",
    "initial_state",
    "parse_statement",
    "parse_term",
    "parse_type",
    "pp_term",
    "pp_type",
    "Term",
    "Type",
]
