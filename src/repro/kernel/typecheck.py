"""Type inference and elaboration of raw parsed terms.

Elaboration performs, in one inference pass plus a zonking pass:

* **name resolution** — a :class:`Var` that is not bound by a binder or
  by the goal context is resolved against the signature and becomes a
  :class:`Const`; unknown names are errors.
* **overload resolution** — the parser's placeholder ``_star`` becomes
  ``mult`` (nat) or ``sep_star`` (CHL predicates) according to the
  inferred operand type.
* **type filling** — unannotated binders get inferred types, and
  :class:`Eq` nodes get their equality type; both matter later (e.g.
  ``induction`` consults the binder type to pick case analysis rules).

Types left underdetermined stay as type variables, giving polymorphic
statements (``forall (T : Type) ...``) their expected meaning.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.errors import TypeError_, UnificationError
from repro.kernel.env import Environment
from repro.kernel.terms import (
    App,
    And,
    Const,
    Eq,
    Exists,
    FalseP,
    Forall,
    Impl,
    Lam,
    Meta,
    Or,
    Term,
    TrueP,
    Var,
    app,
    intern,
)
from repro.kernel.types import (
    NAT,
    PROP,
    TArrow,
    TCon,
    Type,
    apply_tsubst,
    fresh_tvar,
    instantiate_scheme,
    unify_types,
)

__all__ = ["elaborate_statement", "elaborate_term", "infer_type"]

_PRED = TCon("pred")


class _Inferencer:
    def __init__(self, env: Environment) -> None:
        self.env = env
        self.tsubst: Dict[str, Type] = {}

    # -- unification helpers ----------------------------------------------

    def unify(self, t1: Type, t2: Type, where: str) -> None:
        try:
            self.tsubst = unify_types(t1, t2, self.tsubst)
        except UnificationError as exc:
            raise TypeError_(f"{where}: {exc}") from exc

    def resolve(self, ty: Type) -> Type:
        return apply_tsubst(self.tsubst, ty)

    # -- inference ----------------------------------------------------------

    def infer(self, term: Term, ctx: Mapping[str, Type]) -> Tuple[Term, Type]:
        if isinstance(term, Var):
            bound = ctx.get(term.name)
            if bound is not None:
                return term, bound
            info = self.env.signature.get(term.name)
            if info is not None:
                return Const(term.name), instantiate_scheme(info.ty)
            raise TypeError_(f"unknown identifier: {term.name}")
        if isinstance(term, Const):
            info = self.env.signature.get(term.name)
            if info is None:
                raise TypeError_(f"unknown constant: {term.name}")
            return term, instantiate_scheme(info.ty)
        if isinstance(term, Meta):
            raise TypeError_("metavariable in elaborated input")
        if isinstance(term, TrueP) or isinstance(term, FalseP):
            return term, PROP
        if isinstance(term, App):
            return self._infer_app(term, ctx)
        if isinstance(term, Lam):
            binder_ty = term.ty if term.ty is not None else fresh_tvar(term.var)
            inner = dict(ctx)
            inner[term.var] = binder_ty
            body, body_ty = self.infer(term.body, inner)
            return Lam(term.var, binder_ty, body), TArrow(binder_ty, body_ty)
        if isinstance(term, (Forall, Exists)):
            binder_ty = term.ty if term.ty is not None else fresh_tvar(term.var)
            inner = dict(ctx)
            inner[term.var] = binder_ty
            body, body_ty = self.infer(term.body, inner)
            self.unify(body_ty, PROP, f"body of {type(term).__name__.lower()}")
            cls = type(term)
            return cls(term.var, binder_ty, body), PROP
        if isinstance(term, (Impl, And, Or)):
            lhs, lhs_ty = self.infer(term.lhs, ctx)
            rhs, rhs_ty = self.infer(term.rhs, ctx)
            self.unify(lhs_ty, PROP, "connective operand")
            self.unify(rhs_ty, PROP, "connective operand")
            return type(term)(lhs, rhs), PROP
        if isinstance(term, Eq):
            lhs, lhs_ty = self.infer(term.lhs, ctx)
            rhs, rhs_ty = self.infer(term.rhs, ctx)
            self.unify(lhs_ty, rhs_ty, "equality")
            eq_ty = term.ty if term.ty is not None else lhs_ty
            if term.ty is not None:
                self.unify(term.ty, lhs_ty, "equality annotation")
            return Eq(eq_ty, lhs, rhs), PROP
        raise AssertionError(f"unknown term node: {term!r}")

    def _infer_app(
        self, term: App, ctx: Mapping[str, Type]
    ) -> Tuple[Term, Type]:
        # Resolve the parser's overloaded ``_star``.
        if (
            isinstance(term.fn, Var) and term.fn.name == "_star"
        ) or (isinstance(term.fn, Const) and term.fn.name == "_star"):
            if len(term.args) != 2:
                raise TypeError_("_star expects exactly two arguments")
            lhs, lhs_ty = self.infer(term.args[0], ctx)
            rhs, rhs_ty = self.infer(term.args[1], ctx)
            resolved = self.resolve(lhs_ty)
            if resolved == _PRED or self.resolve(rhs_ty) == _PRED:
                name = "sep_star"
                operand = _PRED
                result: Type = _PRED
            else:
                name = "mult"
                operand = NAT
                result = NAT
            if name == "sep_star" and "sep_star" not in self.env.signature:
                raise TypeError_("sep_star is not declared in this scope")
            self.unify(lhs_ty, operand, f"left operand of {name}")
            self.unify(rhs_ty, operand, f"right operand of {name}")
            return app(Const(name), lhs, rhs), result

        fn, fn_ty = self.infer(term.fn, ctx)
        args = []
        result_ty = fn_ty
        for i, arg in enumerate(term.args):
            arg_elab, arg_ty = self.infer(arg, ctx)
            result_resolved = self.resolve(result_ty)
            if isinstance(result_resolved, TArrow):
                self.unify(arg_ty, result_resolved.dom, f"argument {i + 1}")
                result_ty = result_resolved.cod
            else:
                dom = fresh_tvar("d")
                cod = fresh_tvar("c")
                self.unify(result_ty, TArrow(dom, cod), f"application head")
                self.unify(arg_ty, dom, f"argument {i + 1}")
                result_ty = cod
            args.append(arg_elab)
        return app(fn, *args), result_ty

    # -- zonking ------------------------------------------------------------

    def zonk(self, term: Term) -> Term:
        if isinstance(term, (Var, Const, TrueP, FalseP, Meta)):
            return term
        if isinstance(term, App):
            return app(self.zonk(term.fn), *(self.zonk(a) for a in term.args))
        if isinstance(term, (Lam, Forall, Exists)):
            ty = self.resolve(term.ty) if term.ty is not None else None
            return type(term)(term.var, ty, self.zonk(term.body))
        if isinstance(term, (Impl, And, Or)):
            return type(term)(self.zonk(term.lhs), self.zonk(term.rhs))
        if isinstance(term, Eq):
            ty = self.resolve(term.ty) if term.ty is not None else None
            return Eq(ty, self.zonk(term.lhs), self.zonk(term.rhs))
        raise AssertionError(f"unknown term node: {term!r}")


def elaborate_statement(env: Environment, raw: Term) -> Term:
    """Elaborate a closed proposition (lemma/axiom statement)."""
    return elaborate_term(env, raw, {}, expected=PROP)


def elaborate_term(
    env: Environment,
    raw: Term,
    ctx: Mapping[str, Type],
    expected: Optional[Type] = None,
) -> Term:
    """Elaborate ``raw`` in a goal context mapping names to types."""
    inf = _Inferencer(env)
    term, ty = inf.infer(raw, ctx)
    if expected is not None:
        inf.unify(ty, expected, "statement")
    # Elaboration is the parser-side boundary into the kernel: intern
    # here so every downstream traversal starts from arena-canonical
    # nodes with shared derived data.
    return intern(inf.zonk(term))


def infer_type(
    env: Environment, raw: Term, ctx: Mapping[str, Type]
) -> Tuple[Term, Type]:
    """Elaborate ``raw`` and report its inferred type."""
    inf = _Inferencer(env)
    term, ty = inf.infer(raw, ctx)
    return intern(inf.zonk(term)), inf.resolve(ty)
