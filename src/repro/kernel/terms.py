"""Term AST for the proof kernel.

Terms cover both the *object* language (natural numbers, lists, file
system trees...) and the *proposition* language (equality, connectives,
quantifiers).  Propositions are terms of type ``Prop``; this mirrors
Coq, where ``Prop`` is just another sort.

Design notes
------------

* Variables are **named** (no de Bruijn indices).  Substitution is
  capture-avoiding (:mod:`repro.kernel.subst`) and duplicate-state
  detection uses an alpha-canonical rendering, so names are purely
  cosmetic.
* Negation ``~ P`` is *not* a node: the parser produces
  ``Impl(P, FALSE)`` exactly as Coq unfolds ``not``.  The pretty
  printer recognizes the pattern and prints ``~ P``.
* ``Meta`` nodes are unification variables.  They appear when a lemma
  is instantiated by ``apply``/``eapply`` and in goals produced by
  ``eapply``; they are resolved through the proof state's metavariable
  store.
* Numerals are Peano terms (``S (S O)``); the pretty printer renders
  them back as decimal literals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Set, Tuple

from repro.kernel.types import Type

__all__ = [
    "Term",
    "Var",
    "Const",
    "App",
    "Lam",
    "Forall",
    "Exists",
    "Impl",
    "And",
    "Or",
    "Eq",
    "TrueP",
    "FalseP",
    "TRUE",
    "FALSE",
    "Meta",
    "app",
    "napp",
    "neg",
    "is_neg",
    "neg_body",
    "conj",
    "impl_chain",
    "foralls",
    "strip_foralls",
    "strip_impls",
    "nat_lit",
    "as_nat_lit",
    "free_vars",
    "subterms",
    "head_const",
    "metas_of",
]


class Term:
    """Abstract base class of all term nodes."""

    __slots__ = ()

    def __str__(self) -> str:
        # Deferred import: pretty needs terms.
        from repro.kernel.pretty import pp_term

        return pp_term(self)


@dataclass(frozen=True)
class Var(Term):
    """A term variable (bound by a quantifier/lambda, or a context var)."""

    name: str


@dataclass(frozen=True)
class Const(Term):
    """A reference to a signature constant (constructor or function)."""

    name: str


@dataclass(frozen=True)
class App(Term):
    """Application of ``fn`` to one or more arguments."""

    fn: Term
    args: Tuple[Term, ...]

    def __post_init__(self) -> None:
        if not self.args:
            raise ValueError("App requires at least one argument")
        if isinstance(self.fn, App):
            raise ValueError("App must be flattened; use terms.app()")


@dataclass(frozen=True)
class Lam(Term):
    """An anonymous function ``fun (v : ty) => body``."""

    var: str
    ty: Optional[Type]
    body: Term


@dataclass(frozen=True)
class Forall(Term):
    """Universal quantification ``forall (v : ty), body``."""

    var: str
    ty: Optional[Type]
    body: Term


@dataclass(frozen=True)
class Exists(Term):
    """Existential quantification ``exists (v : ty), body``."""

    var: str
    ty: Optional[Type]
    body: Term


@dataclass(frozen=True)
class Impl(Term):
    """Implication ``lhs -> rhs`` (non-dependent product)."""

    lhs: Term
    rhs: Term


@dataclass(frozen=True)
class And(Term):
    """Conjunction ``lhs /\\ rhs``."""

    lhs: Term
    rhs: Term


@dataclass(frozen=True)
class Or(Term):
    """Disjunction ``lhs \\/ rhs``."""

    lhs: Term
    rhs: Term


@dataclass(frozen=True)
class Eq(Term):
    """Propositional equality ``lhs = rhs`` at type ``ty``.

    ``ty`` is ``None`` until elaboration fills it in.
    """

    ty: Optional[Type]
    lhs: Term
    rhs: Term


@dataclass(frozen=True)
class TrueP(Term):
    """The trivially true proposition."""


@dataclass(frozen=True)
class FalseP(Term):
    """The absurd proposition."""


TRUE = TrueP()
FALSE = FalseP()


@dataclass(frozen=True)
class Meta(Term):
    """A unification (existential) variable, e.g. introduced by apply."""

    uid: int
    hint: str = "?"


def app(fn: Term, *args: Term) -> Term:
    """Apply ``fn`` to ``args``, flattening nested applications."""
    if not args:
        return fn
    if isinstance(fn, App):
        return App(fn.fn, fn.args + tuple(args))
    return App(fn, tuple(args))


def napp(name: str, *args: Term) -> Term:
    """Apply the constant ``name`` to ``args`` (``napp('S', x)``)."""
    return app(Const(name), *args)


def neg(body: Term) -> Term:
    """Negation, encoded as ``body -> False`` (Coq's ``not``)."""
    return Impl(body, FALSE)


def is_neg(term: Term) -> bool:
    """True when ``term`` is an encoded negation ``P -> False``."""
    return isinstance(term, Impl) and isinstance(term.rhs, FalseP)


def neg_body(term: Term) -> Term:
    """The ``P`` of an encoded negation ``P -> False``."""
    if not is_neg(term):
        raise ValueError(f"not a negation: {term!r}")
    assert isinstance(term, Impl)
    return term.lhs


def conj(*parts: Term) -> Term:
    """Right-nested conjunction of one or more propositions."""
    if not parts:
        return TRUE
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = And(part, result)
    return result


def impl_chain(premises: Tuple[Term, ...], conclusion: Term) -> Term:
    """Build ``P1 -> ... -> Pn -> conclusion``."""
    result = conclusion
    for prem in reversed(premises):
        result = Impl(prem, result)
    return result


def foralls(binders: Tuple[Tuple[str, Optional[Type]], ...], body: Term) -> Term:
    """Wrap ``body`` in universal quantifiers for each ``(name, ty)``."""
    result = body
    for name, ty in reversed(binders):
        result = Forall(name, ty, result)
    return result


def strip_foralls(term: Term) -> Tuple[Tuple[Tuple[str, Optional[Type]], ...], Term]:
    """Split leading universal quantifiers off ``term``."""
    binders = []
    while isinstance(term, Forall):
        binders.append((term.var, term.ty))
        term = term.body
    return tuple(binders), term


def strip_impls(term: Term) -> Tuple[Tuple[Term, ...], Term]:
    """Split leading implications off ``term`` (premises, conclusion)."""
    premises = []
    while isinstance(term, Impl):
        premises.append(term.lhs)
        term = term.rhs
    return tuple(premises), term


def nat_lit(n: int) -> Term:
    """The Peano numeral for ``n``: ``S (S (... O))``."""
    if n < 0:
        raise ValueError("nat_lit requires a non-negative integer")
    result: Term = Const("O")
    for _ in range(n):
        result = App(Const("S"), (result,))
    return result


def as_nat_lit(term: Term) -> Optional[int]:
    """Inverse of :func:`nat_lit`; ``None`` if not a closed numeral."""
    count = 0
    while True:
        if isinstance(term, Const) and term.name == "O":
            return count
        if (
            isinstance(term, App)
            and isinstance(term.fn, Const)
            and term.fn.name == "S"
            and len(term.args) == 1
        ):
            count += 1
            term = term.args[0]
            continue
        return None


def free_vars(term: Term, bound: Optional[Set[str]] = None) -> Set[str]:
    """The free term-variable names of ``term``."""
    bound = bound or set()
    out: Set[str] = set()
    _free_vars(term, frozenset(bound), out)
    return out


def _free_vars(term: Term, bound: frozenset, out: Set[str]) -> None:
    if isinstance(term, Var):
        if term.name not in bound:
            out.add(term.name)
    elif isinstance(term, App):
        _free_vars(term.fn, bound, out)
        for arg in term.args:
            _free_vars(arg, bound, out)
    elif isinstance(term, (Lam, Forall, Exists)):
        _free_vars(term.body, bound | {term.var}, out)
    elif isinstance(term, (Impl, And, Or)):
        _free_vars(term.lhs, bound, out)
        _free_vars(term.rhs, bound, out)
    elif isinstance(term, Eq):
        _free_vars(term.lhs, bound, out)
        _free_vars(term.rhs, bound, out)
    # Var-free leaves: Const, TrueP, FalseP, Meta.


def subterms(term: Term) -> Iterator[Term]:
    """Yield ``term`` and all of its subterms, pre-order."""
    yield term
    if isinstance(term, App):
        yield from subterms(term.fn)
        for arg in term.args:
            yield from subterms(arg)
    elif isinstance(term, (Lam, Forall, Exists)):
        yield from subterms(term.body)
    elif isinstance(term, (Impl, And, Or)):
        yield from subterms(term.lhs)
        yield from subterms(term.rhs)
    elif isinstance(term, Eq):
        yield from subterms(term.lhs)
        yield from subterms(term.rhs)


def head_const(term: Term) -> Optional[str]:
    """The name of the head constant of ``term``, if any."""
    if isinstance(term, Const):
        return term.name
    if isinstance(term, App) and isinstance(term.fn, Const):
        return term.fn.name
    return None


def metas_of(term: Term) -> Set[int]:
    """The uids of all metavariables occurring in ``term``."""
    out: Set[int] = set()
    for sub in subterms(term):
        if isinstance(sub, Meta):
            out.add(sub.uid)
    return out
