"""Term AST for the proof kernel.

Terms cover both the *object* language (natural numbers, lists, file
system trees...) and the *proposition* language (equality, connectives,
quantifiers).  Propositions are terms of type ``Prop``; this mirrors
Coq, where ``Prop`` is just another sort.

Design notes
------------

* Variables are **named** (no de Bruijn indices).  Substitution is
  capture-avoiding (:mod:`repro.kernel.subst`) and duplicate-state
  detection uses an alpha-canonical rendering, so names are purely
  cosmetic.
* Negation ``~ P`` is *not* a node: the parser produces
  ``Impl(P, FALSE)`` exactly as Coq unfolds ``not``.  The pretty
  printer recognizes the pattern and prints ``~ P``.
* ``Meta`` nodes are unification variables.  They appear when a lemma
  is instantiated by ``apply``/``eapply`` and in goals produced by
  ``eapply``; they are resolved through the proof state's metavariable
  store.
* Numerals are Peano terms (``S (S O)``); the pretty printer renders
  them back as decimal literals.

Performance layer
-----------------

Term nodes are frozen, so three derived quantities are computed once
and stamped on the node (via ``object.__setattr__``): the structural
hash (installed as ``__hash__``, making term-keyed dict/set probes
O(1) after first use), the free-variable set, and the metavariable
set.  ``__eq__`` gets a fast path — identity, then class, then cached
hash — before falling back to the dataclass field walk.  On top of
that, :func:`intern` hash-conses terms through a constructor cache so
structurally equal terms share one representative (and therefore
share all the stamped and memoized derived values).  All of this is
transparent: hashing and equality semantics are unchanged, only their
cost is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, Optional, Set, Tuple

from repro.kernel import cache as _cache
from repro.kernel.types import Type

__all__ = [
    "Term",
    "Var",
    "Const",
    "App",
    "Lam",
    "Forall",
    "Exists",
    "Impl",
    "And",
    "Or",
    "Eq",
    "TrueP",
    "FalseP",
    "TRUE",
    "FALSE",
    "Meta",
    "app",
    "napp",
    "neg",
    "is_neg",
    "neg_body",
    "conj",
    "impl_chain",
    "foralls",
    "strip_foralls",
    "strip_impls",
    "nat_lit",
    "as_nat_lit",
    "free_vars",
    "free_var_set",
    "subterms",
    "head_const",
    "metas_of",
    "meta_set",
    "intern",
    "structural_hash",
]


class Term:
    """Abstract base class of all term nodes."""

    __slots__ = ()

    def __str__(self) -> str:
        # Deferred import: pretty needs terms.
        from repro.kernel.pretty import pp_term

        return pp_term(self)


@dataclass(frozen=True)
class Var(Term):
    """A term variable (bound by a quantifier/lambda, or a context var)."""

    name: str


@dataclass(frozen=True)
class Const(Term):
    """A reference to a signature constant (constructor or function)."""

    name: str


@dataclass(frozen=True)
class App(Term):
    """Application of ``fn`` to one or more arguments."""

    fn: Term
    args: Tuple[Term, ...]

    def __post_init__(self) -> None:
        if not self.args:
            raise ValueError("App requires at least one argument")
        if isinstance(self.fn, App):
            raise ValueError("App must be flattened; use terms.app()")


@dataclass(frozen=True)
class Lam(Term):
    """An anonymous function ``fun (v : ty) => body``."""

    var: str
    ty: Optional[Type]
    body: Term


@dataclass(frozen=True)
class Forall(Term):
    """Universal quantification ``forall (v : ty), body``."""

    var: str
    ty: Optional[Type]
    body: Term


@dataclass(frozen=True)
class Exists(Term):
    """Existential quantification ``exists (v : ty), body``."""

    var: str
    ty: Optional[Type]
    body: Term


@dataclass(frozen=True)
class Impl(Term):
    """Implication ``lhs -> rhs`` (non-dependent product)."""

    lhs: Term
    rhs: Term


@dataclass(frozen=True)
class And(Term):
    """Conjunction ``lhs /\\ rhs``."""

    lhs: Term
    rhs: Term


@dataclass(frozen=True)
class Or(Term):
    """Disjunction ``lhs \\/ rhs``."""

    lhs: Term
    rhs: Term


@dataclass(frozen=True)
class Eq(Term):
    """Propositional equality ``lhs = rhs`` at type ``ty``.

    ``ty`` is ``None`` until elaboration fills it in.
    """

    ty: Optional[Type]
    lhs: Term
    rhs: Term


@dataclass(frozen=True)
class TrueP(Term):
    """The trivially true proposition."""


@dataclass(frozen=True)
class FalseP(Term):
    """The absurd proposition."""


TRUE = TrueP()
FALSE = FalseP()


@dataclass(frozen=True)
class Meta(Term):
    """A unification (existential) variable, e.g. introduced by apply."""

    uid: int
    hint: str = "?"


# ----------------------------------------------------------------------
# Performance layer: cached structural hash, fast equality, interning
# ----------------------------------------------------------------------


def _compute_hash(term: Term) -> int:
    """Structural hash, mixing cached child hashes (one pass per node)."""
    if isinstance(term, Var):
        return hash(("V", term.name))
    if isinstance(term, Const):
        return hash(("C", term.name))
    if isinstance(term, App):
        return hash(("A", hash(term.fn)) + tuple(hash(a) for a in term.args))
    if isinstance(term, (Lam, Forall, Exists)):
        return hash(
            (type(term).__name__, term.var, hash(term.ty), hash(term.body))
        )
    if isinstance(term, (Impl, And, Or)):
        return hash((type(term).__name__, hash(term.lhs), hash(term.rhs)))
    if isinstance(term, Eq):
        return hash(("=", hash(term.ty), hash(term.lhs), hash(term.rhs)))
    if isinstance(term, TrueP):
        return hash("TrueP")
    if isinstance(term, FalseP):
        return hash("FalseP")
    if isinstance(term, Meta):
        return hash(("M", term.uid, term.hint))
    raise AssertionError(f"unknown term node: {term!r}")


def _term_hash(self: Term) -> int:
    h = self.__dict__.get("_h")
    if h is None:
        h = _compute_hash(self)
        object.__setattr__(self, "_h", h)
    return h


def _term_eq(self: Term, other: object):
    if self is other:
        return True
    if other.__class__ is not self.__class__:
        return NotImplemented
    if _term_hash(self) != _term_hash(other):  # type: ignore[arg-type]
        return False
    return self._fields_eq(other)  # type: ignore[attr-defined]


def structural_hash(term: Term) -> int:
    """The term's cached structural hash (same value as ``hash(term)``)."""
    return _term_hash(term)


_TERM_CLASSES = (
    Var,
    Const,
    App,
    Lam,
    Forall,
    Exists,
    Impl,
    And,
    Or,
    Eq,
    TrueP,
    FalseP,
    Meta,
)

for _cls in _TERM_CLASSES:
    # Replace the dataclass-generated __hash__/__eq__ (full field walks
    # on every call) with cached-hash variants.  The generated __eq__ is
    # kept as the structural fallback.
    _cls._fields_eq = _cls.__eq__  # type: ignore[attr-defined]
    _cls.__eq__ = _term_eq  # type: ignore[assignment]
    _cls.__hash__ = _term_hash  # type: ignore[assignment]
del _cls


_INTERN_TABLE = _cache.BoundedCache("intern", capacity=1_000_000)


def intern(term: Term) -> Term:
    """Hash-cons ``term``: one shared representative per structure.

    Structurally equal terms intern to the *same object*, so all the
    derived values stamped on a node (hash, free variables, metas,
    alpha fingerprints) are computed once per structure rather than
    once per copy.  Interning is safe because terms are frozen; the
    table is dropped (and the epoch stamped on representatives is
    invalidated) by :func:`repro.kernel.cache.clear_caches`.
    """
    if term.__dict__.get("_interned") == _cache.intern_epoch():
        return term
    if not _cache.enabled():
        return term
    cached = _INTERN_TABLE.get(term)
    if cached is not None:
        return cached
    rep = _intern_children(term)
    _INTERN_TABLE.put(rep, rep)
    object.__setattr__(rep, "_interned", _cache.intern_epoch())
    return rep


def _intern_children(term: Term) -> Term:
    """Rebuild ``term`` over interned children (identity-preserving)."""
    if isinstance(term, (Var, Const, TrueP, FalseP, Meta)):
        return term
    if isinstance(term, App):
        fn = intern(term.fn)
        args = tuple(intern(a) for a in term.args)
        if fn is term.fn and all(a is b for a, b in zip(args, term.args)):
            return term
        return App(fn, args)
    if isinstance(term, (Lam, Forall, Exists)):
        body = intern(term.body)
        if body is term.body:
            return term
        return type(term)(term.var, term.ty, body)
    if isinstance(term, (Impl, And, Or)):
        lhs = intern(term.lhs)
        rhs = intern(term.rhs)
        if lhs is term.lhs and rhs is term.rhs:
            return term
        return type(term)(lhs, rhs)
    if isinstance(term, Eq):
        lhs = intern(term.lhs)
        rhs = intern(term.rhs)
        if lhs is term.lhs and rhs is term.rhs:
            return term
        return Eq(term.ty, lhs, rhs)
    raise AssertionError(f"unknown term node: {term!r}")


def app(fn: Term, *args: Term) -> Term:
    """Apply ``fn`` to ``args``, flattening nested applications."""
    if not args:
        return fn
    if isinstance(fn, App):
        return App(fn.fn, fn.args + tuple(args))
    return App(fn, tuple(args))


def napp(name: str, *args: Term) -> Term:
    """Apply the constant ``name`` to ``args`` (``napp('S', x)``)."""
    return app(Const(name), *args)


def neg(body: Term) -> Term:
    """Negation, encoded as ``body -> False`` (Coq's ``not``)."""
    return Impl(body, FALSE)


def is_neg(term: Term) -> bool:
    """True when ``term`` is an encoded negation ``P -> False``."""
    return isinstance(term, Impl) and isinstance(term.rhs, FalseP)


def neg_body(term: Term) -> Term:
    """The ``P`` of an encoded negation ``P -> False``."""
    if not is_neg(term):
        raise ValueError(f"not a negation: {term!r}")
    assert isinstance(term, Impl)
    return term.lhs


def conj(*parts: Term) -> Term:
    """Right-nested conjunction of one or more propositions."""
    if not parts:
        return TRUE
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = And(part, result)
    return result


def impl_chain(premises: Tuple[Term, ...], conclusion: Term) -> Term:
    """Build ``P1 -> ... -> Pn -> conclusion``."""
    result = conclusion
    for prem in reversed(premises):
        result = Impl(prem, result)
    return result


def foralls(binders: Tuple[Tuple[str, Optional[Type]], ...], body: Term) -> Term:
    """Wrap ``body`` in universal quantifiers for each ``(name, ty)``."""
    result = body
    for name, ty in reversed(binders):
        result = Forall(name, ty, result)
    return result


def strip_foralls(term: Term) -> Tuple[Tuple[Tuple[str, Optional[Type]], ...], Term]:
    """Split leading universal quantifiers off ``term``."""
    binders = []
    while isinstance(term, Forall):
        binders.append((term.var, term.ty))
        term = term.body
    return tuple(binders), term


def strip_impls(term: Term) -> Tuple[Tuple[Term, ...], Term]:
    """Split leading implications off ``term`` (premises, conclusion)."""
    premises = []
    while isinstance(term, Impl):
        premises.append(term.lhs)
        term = term.rhs
    return tuple(premises), term


def nat_lit(n: int) -> Term:
    """The Peano numeral for ``n``: ``S (S (... O))``."""
    if n < 0:
        raise ValueError("nat_lit requires a non-negative integer")
    result: Term = Const("O")
    for _ in range(n):
        result = App(Const("S"), (result,))
    return result


def as_nat_lit(term: Term) -> Optional[int]:
    """Inverse of :func:`nat_lit`; ``None`` if not a closed numeral."""
    count = 0
    while True:
        if isinstance(term, Const) and term.name == "O":
            return count
        if (
            isinstance(term, App)
            and isinstance(term.fn, Const)
            and term.fn.name == "S"
            and len(term.args) == 1
        ):
            count += 1
            term = term.args[0]
            continue
        return None


_EMPTY_NAMES: FrozenSet[str] = frozenset()


def free_var_set(term: Term) -> FrozenSet[str]:
    """The free term-variable names of ``term``, cached on the node."""
    cached = term.__dict__.get("_fvs")
    if cached is None:
        cached = _compute_free_vars(term)
        object.__setattr__(term, "_fvs", cached)
    return cached


def _compute_free_vars(term: Term) -> FrozenSet[str]:
    if isinstance(term, Var):
        return frozenset((term.name,))
    if isinstance(term, App):
        out = set(free_var_set(term.fn))
        for arg in term.args:
            out |= free_var_set(arg)
        return frozenset(out)
    if isinstance(term, (Lam, Forall, Exists)):
        fvs = free_var_set(term.body)
        return fvs - {term.var} if term.var in fvs else fvs
    if isinstance(term, (Impl, And, Or, Eq)):
        return free_var_set(term.lhs) | free_var_set(term.rhs)
    # Var-free leaves: Const, TrueP, FalseP, Meta.
    return _EMPTY_NAMES


def free_vars(term: Term, bound: Optional[Set[str]] = None) -> Set[str]:
    """The free term-variable names of ``term`` (minus ``bound``)."""
    fvs = free_var_set(term)
    if bound:
        return set(fvs - frozenset(bound))
    return set(fvs)


def subterms(term: Term) -> Iterator[Term]:
    """Yield ``term`` and all of its subterms, pre-order."""
    yield term
    if isinstance(term, App):
        yield from subterms(term.fn)
        for arg in term.args:
            yield from subterms(arg)
    elif isinstance(term, (Lam, Forall, Exists)):
        yield from subterms(term.body)
    elif isinstance(term, (Impl, And, Or)):
        yield from subterms(term.lhs)
        yield from subterms(term.rhs)
    elif isinstance(term, Eq):
        yield from subterms(term.lhs)
        yield from subterms(term.rhs)


def head_const(term: Term) -> Optional[str]:
    """The name of the head constant of ``term``, if any."""
    if isinstance(term, Const):
        return term.name
    if isinstance(term, App) and isinstance(term.fn, Const):
        return term.fn.name
    return None


_EMPTY_UIDS: FrozenSet[int] = frozenset()


def meta_set(term: Term) -> FrozenSet[int]:
    """The uids of metavariables occurring in ``term``, cached on the node."""
    cached = term.__dict__.get("_metas")
    if cached is None:
        cached = _compute_metas(term)
        object.__setattr__(term, "_metas", cached)
    return cached


def _compute_metas(term: Term) -> FrozenSet[int]:
    if isinstance(term, Meta):
        return frozenset((term.uid,))
    if isinstance(term, App):
        out = set(meta_set(term.fn))
        for arg in term.args:
            out |= meta_set(arg)
        return frozenset(out)
    if isinstance(term, (Lam, Forall, Exists)):
        return meta_set(term.body)
    if isinstance(term, (Impl, And, Or, Eq)):
        return meta_set(term.lhs) | meta_set(term.rhs)
    return _EMPTY_UIDS


def metas_of(term: Term) -> Set[int]:
    """The uids of all metavariables occurring in ``term``."""
    return set(meta_set(term))
