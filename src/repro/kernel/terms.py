"""Term AST for the proof kernel.

Terms cover both the *object* language (natural numbers, lists, file
system trees...) and the *proposition* language (equality, connectives,
quantifiers).  Propositions are terms of type ``Prop``; this mirrors
Coq, where ``Prop`` is just another sort.

Design notes
------------

* Variables are **named** (no de Bruijn indices).  Substitution is
  capture-avoiding (:mod:`repro.kernel.subst`) and duplicate-state
  detection uses an alpha-canonical rendering, so names are purely
  cosmetic.
* Negation ``~ P`` is *not* a node: the parser produces
  ``Impl(P, FALSE)`` exactly as Coq unfolds ``not``.  The pretty
  printer recognizes the pattern and prints ``~ P``.
* ``Meta`` nodes are unification variables.  They appear when a lemma
  is instantiated by ``apply``/``eapply`` and in goals produced by
  ``eapply``; they are resolved through the proof state's metavariable
  store.
* Numerals are Peano terms (``S (S O)``); the pretty printer renders
  them back as decimal literals.

Performance layer
-----------------

Term nodes are frozen, so three derived quantities are computed once
and stamped on the node (via ``object.__setattr__``): the structural
hash (installed as ``__hash__``, making term-keyed dict/set probes
O(1) after first use), the free-variable set, and the metavariable
set.  ``__eq__`` gets a fast path — identity, then class, then cached
hash — before falling back to the dataclass field walk.  On top of
that, :func:`intern` hash-conses terms through the node arena in
:mod:`repro.kernel.arena`: structurally equal terms share one
representative addressed by an integer id, structural equality of
interned terms is id equality, and derived data (hash, free vars,
metas, alpha fingerprints) lives in parallel arrays keyed by id.  All
of this is transparent: hashing and equality semantics are unchanged,
only their cost is.

Every derived-data walk here is **iterative** (explicit work stacks,
post-order stamping), so hashing or collecting the free variables of
a 5000-deep Peano numeral never touches Python's recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, Optional, Set, Tuple

from repro.kernel import cache as _cache
from repro.kernel.types import Type

__all__ = [
    "Term",
    "Var",
    "Const",
    "App",
    "Lam",
    "Forall",
    "Exists",
    "Impl",
    "And",
    "Or",
    "Eq",
    "TrueP",
    "FalseP",
    "TRUE",
    "FALSE",
    "Meta",
    "app",
    "napp",
    "neg",
    "is_neg",
    "neg_body",
    "conj",
    "impl_chain",
    "foralls",
    "strip_foralls",
    "strip_impls",
    "nat_lit",
    "as_nat_lit",
    "free_vars",
    "free_var_set",
    "subterms",
    "head_const",
    "metas_of",
    "meta_set",
    "intern",
    "intern_id",
    "term_of",
    "structural_hash",
    "term_children",
]


class Term:
    """Abstract base class of all term nodes."""

    __slots__ = ()

    def __str__(self) -> str:
        # Deferred import: pretty needs terms.
        from repro.kernel.pretty import pp_term

        return pp_term(self)


@dataclass(frozen=True)
class Var(Term):
    """A term variable (bound by a quantifier/lambda, or a context var)."""

    name: str


@dataclass(frozen=True)
class Const(Term):
    """A reference to a signature constant (constructor or function)."""

    name: str


@dataclass(frozen=True)
class App(Term):
    """Application of ``fn`` to one or more arguments."""

    fn: Term
    args: Tuple[Term, ...]

    def __post_init__(self) -> None:
        if not self.args:
            raise ValueError("App requires at least one argument")
        if isinstance(self.fn, App):
            raise ValueError("App must be flattened; use terms.app()")


@dataclass(frozen=True)
class Lam(Term):
    """An anonymous function ``fun (v : ty) => body``."""

    var: str
    ty: Optional[Type]
    body: Term


@dataclass(frozen=True)
class Forall(Term):
    """Universal quantification ``forall (v : ty), body``."""

    var: str
    ty: Optional[Type]
    body: Term


@dataclass(frozen=True)
class Exists(Term):
    """Existential quantification ``exists (v : ty), body``."""

    var: str
    ty: Optional[Type]
    body: Term


@dataclass(frozen=True)
class Impl(Term):
    """Implication ``lhs -> rhs`` (non-dependent product)."""

    lhs: Term
    rhs: Term


@dataclass(frozen=True)
class And(Term):
    """Conjunction ``lhs /\\ rhs``."""

    lhs: Term
    rhs: Term


@dataclass(frozen=True)
class Or(Term):
    """Disjunction ``lhs \\/ rhs``."""

    lhs: Term
    rhs: Term


@dataclass(frozen=True)
class Eq(Term):
    """Propositional equality ``lhs = rhs`` at type ``ty``.

    ``ty`` is ``None`` until elaboration fills it in.
    """

    ty: Optional[Type]
    lhs: Term
    rhs: Term


@dataclass(frozen=True)
class TrueP(Term):
    """The trivially true proposition."""


@dataclass(frozen=True)
class FalseP(Term):
    """The absurd proposition."""


TRUE = TrueP()
FALSE = FalseP()


@dataclass(frozen=True)
class Meta(Term):
    """A unification (existential) variable, e.g. introduced by apply."""

    uid: int
    hint: str = "?"


# ----------------------------------------------------------------------
# Performance layer: cached structural hash, fast equality, interning
# ----------------------------------------------------------------------


def term_children(term: Term) -> Tuple[Term, ...]:
    """The direct term-valued children of ``term`` (types excluded)."""
    cls = term.__class__
    if cls is App:
        return (term.fn,) + term.args
    if cls is Lam or cls is Forall or cls is Exists:
        return (term.body,)
    if cls is Impl or cls is And or cls is Or or cls is Eq:
        return (term.lhs, term.rhs)
    return ()


def _combine_hash(term: Term) -> int:
    """Structural hash of one node from already-stamped child hashes."""
    cls = term.__class__
    if cls is Var:
        return hash(("V", term.name))
    if cls is Const:
        return hash(("C", term.name))
    if cls is App:
        return hash(("A", hash(term.fn)) + tuple(hash(a) for a in term.args))
    if cls is Lam or cls is Forall or cls is Exists:
        return hash((cls.__name__, term.var, hash(term.ty), hash(term.body)))
    if cls is Impl or cls is And or cls is Or:
        return hash((cls.__name__, hash(term.lhs), hash(term.rhs)))
    if cls is Eq:
        return hash(("=", hash(term.ty), hash(term.lhs), hash(term.rhs)))
    if cls is TrueP:
        return hash("TrueP")
    if cls is FalseP:
        return hash("FalseP")
    if cls is Meta:
        return hash(("M", term.uid, term.hint))
    raise AssertionError(f"unknown term node: {term!r}")


def _term_hash(self: Term) -> int:
    h = self.__dict__.get("_h")
    if h is None:
        # Iterative post-order stamp: children first, so _combine_hash
        # only ever reads O(1) cached child hashes.  Recursing here
        # would overflow on deep terms (5k-deep Peano numerals).
        stack = [self]
        while stack:
            t = stack[-1]
            if "_h" in t.__dict__:
                stack.pop()
                continue
            pending = [c for c in term_children(t) if "_h" not in c.__dict__]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            object.__setattr__(t, "_h", _combine_hash(t))
        h = self.__dict__["_h"]
    return h


def _term_eq(self: Term, other: object):
    if self is other:
        return True
    if other.__class__ is not self.__class__:
        return NotImplemented
    d1 = self.__dict__
    d2 = other.__dict__  # type: ignore[attr-defined]
    gen = d1.get("_agen")
    if gen is not None and gen == d2.get("_agen"):
        # Both interned in the live arena generation: structural
        # equality IS id equality.
        return d1["_aid"] == d2["_aid"]
    if _term_hash(self) != _term_hash(other):  # type: ignore[arg-type]
        return False
    return _structural_eq(self, other)  # type: ignore[arg-type]


def _structural_eq(t1: Term, t2: Term) -> bool:
    """Field-by-field equality as an iterative pair walk.

    The dataclass-generated ``__eq__`` compares child terms
    recursively; on 5k-deep numerals that blows the recursion limit
    (e.g. from a plain dict probe whose bucket holds an equal deep
    key).  Hashes are compared before descending, so unequal pairs
    exit early just like the recursive version.
    """
    stack = [(t1, t2)]
    while stack:
        a, b = stack.pop()
        if a is b:
            continue
        cls = a.__class__
        if cls is not b.__class__:
            return False
        da = a.__dict__
        db = b.__dict__
        gen = da.get("_agen")
        if gen is not None and gen == db.get("_agen"):
            if da["_aid"] != db["_aid"]:
                return False
            continue
        if _term_hash(a) != _term_hash(b):
            return False
        if cls is Var or cls is Const:
            if a.name != b.name:
                return False
        elif cls is App:
            if len(a.args) != len(b.args):
                return False
            stack.append((a.fn, b.fn))
            stack.extend(zip(a.args, b.args))
        elif cls is Lam or cls is Forall or cls is Exists:
            if a.var != b.var or a.ty != b.ty:
                return False
            stack.append((a.body, b.body))
        elif cls is Impl or cls is And or cls is Or:
            stack.append((a.lhs, b.lhs))
            stack.append((a.rhs, b.rhs))
        elif cls is Eq:
            if a.ty != b.ty:
                return False
            stack.append((a.lhs, b.lhs))
            stack.append((a.rhs, b.rhs))
        elif cls is Meta:
            if a.uid != b.uid or a.hint != b.hint:
                return False
        # TrueP/FalseP carry no fields.
    return True


def structural_hash(term: Term) -> int:
    """The term's cached structural hash (same value as ``hash(term)``)."""
    return _term_hash(term)


_TERM_CLASSES = (
    Var,
    Const,
    App,
    Lam,
    Forall,
    Exists,
    Impl,
    And,
    Or,
    Eq,
    TrueP,
    FalseP,
    Meta,
)

for _cls in _TERM_CLASSES:
    # Replace the dataclass-generated __hash__/__eq__ (full recursive
    # field walks on every call) with the cached-hash / id-equality /
    # iterative-fallback variants.
    _cls.__eq__ = _term_eq  # type: ignore[assignment]
    _cls.__hash__ = _term_hash  # type: ignore[assignment]
del _cls


# Deferred import cache: arena imports the term classes from this
# module, so this module can only reach arena lazily.
_ARENA_MOD = None


def _arena():
    global _ARENA_MOD
    if _ARENA_MOD is None:
        from repro.kernel import arena as mod

        _ARENA_MOD = mod
    return _ARENA_MOD


def intern(term: Term) -> Term:
    """Hash-cons ``term``: one shared representative per structure.

    Structurally equal terms intern to the *same object* — the arena's
    canonical node for their id (:mod:`repro.kernel.arena`) — so all
    derived values (hash, free variables, metas, alpha fingerprints)
    are computed once per structure rather than once per copy, and
    structural equality of interned terms is id (identity) equality.
    Interning is safe because terms are frozen; the arena is retired
    (and the epoch stamped on representatives is invalidated) by
    :func:`repro.kernel.cache.clear_caches`.
    """
    if not _cache.enabled():
        return term
    return _arena().intern_term(term)


def intern_id(term: Term) -> int:
    """The arena id of ``term`` (interning it first if necessary)."""
    return _arena().intern_id(term)


def term_of(tid: int) -> Term:
    """The canonical term for an arena id (inverse of :func:`intern_id`)."""
    return _arena().term_of(tid)


def app(fn: Term, *args: Term) -> Term:
    """Apply ``fn`` to ``args``, flattening nested applications."""
    if not args:
        return fn
    if isinstance(fn, App):
        return App(fn.fn, fn.args + tuple(args))
    return App(fn, tuple(args))


def napp(name: str, *args: Term) -> Term:
    """Apply the constant ``name`` to ``args`` (``napp('S', x)``)."""
    return app(Const(name), *args)


def neg(body: Term) -> Term:
    """Negation, encoded as ``body -> False`` (Coq's ``not``)."""
    return Impl(body, FALSE)


def is_neg(term: Term) -> bool:
    """True when ``term`` is an encoded negation ``P -> False``."""
    return isinstance(term, Impl) and isinstance(term.rhs, FalseP)


def neg_body(term: Term) -> Term:
    """The ``P`` of an encoded negation ``P -> False``."""
    if not is_neg(term):
        raise ValueError(f"not a negation: {term!r}")
    assert isinstance(term, Impl)
    return term.lhs


def conj(*parts: Term) -> Term:
    """Right-nested conjunction of one or more propositions."""
    if not parts:
        return TRUE
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = And(part, result)
    return result


def impl_chain(premises: Tuple[Term, ...], conclusion: Term) -> Term:
    """Build ``P1 -> ... -> Pn -> conclusion``."""
    result = conclusion
    for prem in reversed(premises):
        result = Impl(prem, result)
    return result


def foralls(binders: Tuple[Tuple[str, Optional[Type]], ...], body: Term) -> Term:
    """Wrap ``body`` in universal quantifiers for each ``(name, ty)``."""
    result = body
    for name, ty in reversed(binders):
        result = Forall(name, ty, result)
    return result


def strip_foralls(term: Term) -> Tuple[Tuple[Tuple[str, Optional[Type]], ...], Term]:
    """Split leading universal quantifiers off ``term``."""
    binders = []
    while isinstance(term, Forall):
        binders.append((term.var, term.ty))
        term = term.body
    return tuple(binders), term


def strip_impls(term: Term) -> Tuple[Tuple[Term, ...], Term]:
    """Split leading implications off ``term`` (premises, conclusion)."""
    premises = []
    while isinstance(term, Impl):
        premises.append(term.lhs)
        term = term.rhs
    return tuple(premises), term


def nat_lit(n: int) -> Term:
    """The Peano numeral for ``n``: ``S (S (... O))``."""
    if n < 0:
        raise ValueError("nat_lit requires a non-negative integer")
    result: Term = Const("O")
    for _ in range(n):
        result = App(Const("S"), (result,))
    return result


def as_nat_lit(term: Term) -> Optional[int]:
    """Inverse of :func:`nat_lit`; ``None`` if not a closed numeral."""
    count = 0
    while True:
        if isinstance(term, Const) and term.name == "O":
            return count
        if (
            isinstance(term, App)
            and isinstance(term.fn, Const)
            and term.fn.name == "S"
            and len(term.args) == 1
        ):
            count += 1
            term = term.args[0]
            continue
        return None


_EMPTY_NAMES: FrozenSet[str] = frozenset()


def free_var_set(term: Term) -> FrozenSet[str]:
    """The free term-variable names of ``term``, cached on the node."""
    cached = term.__dict__.get("_fvs")
    if cached is None:
        # Iterative post-order stamp (children before parents), so the
        # combine step below reads only cached child sets.
        stack = [term]
        while stack:
            t = stack[-1]
            if "_fvs" in t.__dict__:
                stack.pop()
                continue
            pending = [
                c for c in term_children(t) if "_fvs" not in c.__dict__
            ]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            object.__setattr__(t, "_fvs", _combine_free_vars(t))
        cached = term.__dict__["_fvs"]
    return cached


def _combine_free_vars(term: Term) -> FrozenSet[str]:
    """Free vars of one node from already-stamped child sets."""
    cls = term.__class__
    if cls is Var:
        return frozenset((term.name,))
    if cls is App:
        out = set(term.fn.__dict__["_fvs"])
        for arg in term.args:
            out |= arg.__dict__["_fvs"]
        return frozenset(out)
    if cls is Lam or cls is Forall or cls is Exists:
        fvs = term.body.__dict__["_fvs"]
        return fvs - {term.var} if term.var in fvs else fvs
    if cls is Impl or cls is And or cls is Or or cls is Eq:
        return term.lhs.__dict__["_fvs"] | term.rhs.__dict__["_fvs"]
    # Var-free leaves: Const, TrueP, FalseP, Meta.
    return _EMPTY_NAMES


def free_vars(term: Term, bound: Optional[Set[str]] = None) -> Set[str]:
    """The free term-variable names of ``term`` (minus ``bound``)."""
    fvs = free_var_set(term)
    if bound:
        return set(fvs - frozenset(bound))
    return set(fvs)


def subterms(term: Term) -> Iterator[Term]:
    """Yield ``term`` and all of its subterms, pre-order (iterative)."""
    stack = [term]
    while stack:
        t = stack.pop()
        yield t
        stack.extend(reversed(term_children(t)))


def head_const(term: Term) -> Optional[str]:
    """The name of the head constant of ``term``, if any."""
    if isinstance(term, Const):
        return term.name
    if isinstance(term, App) and isinstance(term.fn, Const):
        return term.fn.name
    return None


_EMPTY_UIDS: FrozenSet[int] = frozenset()


def meta_set(term: Term) -> FrozenSet[int]:
    """The uids of metavariables occurring in ``term``, cached on the node."""
    cached = term.__dict__.get("_metas")
    if cached is None:
        stack = [term]
        while stack:
            t = stack[-1]
            if "_metas" in t.__dict__:
                stack.pop()
                continue
            pending = [
                c for c in term_children(t) if "_metas" not in c.__dict__
            ]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            object.__setattr__(t, "_metas", _combine_metas(t))
        cached = term.__dict__["_metas"]
    return cached


def _combine_metas(term: Term) -> FrozenSet[int]:
    cls = term.__class__
    if cls is Meta:
        return frozenset((term.uid,))
    if cls is App:
        out = set(term.fn.__dict__["_metas"])
        for arg in term.args:
            out |= arg.__dict__["_metas"]
        return frozenset(out)
    if cls is Lam or cls is Forall or cls is Exists:
        return term.body.__dict__["_metas"]
    if cls is Impl or cls is And or cls is Or or cls is Eq:
        return term.lhs.__dict__["_metas"] | term.rhs.__dict__["_metas"]
    return _EMPTY_UIDS


def metas_of(term: Term) -> Set[int]:
    """The uids of all metavariables occurring in ``term``."""
    return set(meta_set(term))
