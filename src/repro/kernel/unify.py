"""First-order unification with metavariables.

Used by ``apply``/``eapply`` (unify a lemma's conclusion with the
goal), ``rewrite`` (match an equation's left-hand side against
subterms), ``inversion`` (match constructor conclusions against a
hypothesis), and ``auto``/``eauto``.

Scope discipline: when unification descends under binders, both
binders are renamed to a shared canonical name (``%0``, ``%1``, ...).
A metavariable may never be solved by a term mentioning such a name —
that would smuggle a bound variable out of its scope.

Conversion: on a rigid/rigid head clash the unifier can consult an
optional ``whnf`` callback (weak-head normalization from
:mod:`repro.kernel.reduction`) and retry, approximating Coq's
unification-up-to-conversion in a controlled way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.errors import UnificationError
from repro.kernel.subst import subst_metas, subst_var
from repro.kernel.terms import (
    App,
    And,
    Const,
    Eq,
    Exists,
    FalseP,
    Forall,
    Impl,
    Lam,
    Meta,
    Or,
    Term,
    TrueP,
    Var,
    free_var_set,
    meta_set,
)

__all__ = ["MetaStore", "unify", "match_term"]

Reducer = Callable[[Term], Term]


@dataclass
class MetaStore:
    """Allocates metavariables and records their solutions."""

    next_uid: int = 0
    solutions: Dict[int, Term] = field(default_factory=dict)

    def fresh(self, hint: str = "?") -> Meta:
        meta = Meta(self.next_uid, hint)
        self.next_uid += 1
        return meta

    def solve(self, uid: int, term: Term) -> None:
        if uid in self.solutions:
            raise UnificationError(f"metavariable ?{uid} already solved")
        self.solutions[uid] = term

    def resolve(self, term: Term) -> Term:
        """Substitute all currently known solutions into ``term``."""
        return subst_metas(term, self.solutions)

    def is_solved(self, uid: int) -> bool:
        return uid in self.solutions

    def snapshot(self) -> Tuple[int, Dict[int, Term]]:
        """Capture both solutions *and* the uid counter.

        Restoring the counter matters for the Qed completeness check:
        metavariables allocated by failed/abandoned attempts must not
        linger as "unresolved existentials"."""
        return (self.next_uid, dict(self.solutions))

    def restore(self, snap: Tuple[int, Dict[int, Term]]) -> None:
        self.next_uid, self.solutions = snap[0], dict(snap[1])


def _canonical(level: int) -> str:
    # '%' cannot appear in parsed identifiers, so no user name collides.
    return f"%{level}"


def unify(
    t1: Term,
    t2: Term,
    store: MetaStore,
    whnf: Optional[Reducer] = None,
) -> None:
    """Unify ``t1`` with ``t2``, extending ``store`` with solutions.

    Raises :class:`UnificationError` on failure; on failure the store
    is rolled back to its state at entry.
    """
    snap = store.snapshot()
    try:
        _unify(t1, t2, store, 0, whnf)
    except UnificationError:
        store.restore(snap)
        raise


def match_term(
    pattern: Term,
    subject: Term,
    store: MetaStore,
    whnf: Optional[Reducer] = None,
) -> None:
    """One-sided unification: only ``pattern``'s metas may be solved.

    The caller guarantees ``subject`` contains no unsolved metas (goal
    terms normally do not, except under ``eapply``; rewrite callers
    resolve first).
    """
    unify(pattern, subject, store, whnf)


# Task opcodes for the iterative unifier: unify one resolved pair, or
# pop the innermost attempt marker (its scope completed successfully).
_PAIR, _POP_ATTEMPT = 0, 1


def _unify(
    t1: Term,
    t2: Term,
    store: MetaStore,
    depth: int,
    whnf: Optional[Reducer],
) -> None:
    """Iterative worklist unification.

    The recursive original nested a try/except per application node
    (``_attempt``: snapshot, unify head then args, on failure restore
    and fall back to weak-head normalization).  Here that nesting is a
    stack of *attempt markers* ``(task base, resolved pair, depth,
    snapshot)``: a :class:`UnificationError` unwinds to the innermost
    marker — discarding the tasks pushed inside its scope, restoring
    its snapshot — and retries the recorded pair after ``whnf``; if no
    reduction progress is possible the failure propagates to the next
    marker out, exactly mirroring the exception's path through the
    nested ``except`` blocks.  Only unification failures unwind:
    anything else a ``whnf`` callback raises (tactic timeouts) escapes
    untouched.  Deep spines no longer consume Python stack frames.
    """
    tasks: list = [(_PAIR, t1, t2, depth)]
    # (base_len, resolved_t1, resolved_t2, depth, store_snapshot)
    attempts: list = []
    while tasks:
        task = tasks.pop()
        try:
            if task[0] == _POP_ATTEMPT:
                attempts.pop()
                continue
            _, a, b, d = task
            a = store.resolve(a)
            b = store.resolve(b)

            if isinstance(a, Meta):
                _solve_meta(a, b, store, d)
                continue
            if isinstance(b, Meta):
                _solve_meta(b, a, store, d)
                continue

            if isinstance(a, Var) and isinstance(b, Var):
                if a.name == b.name:
                    continue
                raise UnificationError(
                    f"variable clash: {a.name} vs {b.name}"
                )

            if isinstance(a, Const) and isinstance(b, Const):
                if a.name == b.name:
                    continue
                _retry_whnf(a, b, d, whnf, tasks)
                continue

            if isinstance(a, (TrueP, FalseP)) and type(a) is type(b):
                continue

            if isinstance(a, App) and isinstance(b, App):
                if len(a.args) == len(b.args):
                    attempts.append(
                        (len(tasks), a, b, d, store.snapshot())
                    )
                    tasks.append((_POP_ATTEMPT,))
                    for x, y in zip(reversed(a.args), reversed(b.args)):
                        tasks.append((_PAIR, x, y, d))
                    tasks.append((_PAIR, a.fn, b.fn, d))
                    continue
                _retry_whnf(a, b, d, whnf, tasks)
                continue

            if isinstance(a, (Lam, Forall, Exists)) and type(a) is type(b):
                fresh = _canonical(d)
                body1 = subst_var(a.body, a.var, Var(fresh))
                body2 = subst_var(b.body, b.var, Var(fresh))  # type: ignore[union-attr]
                tasks.append((_PAIR, body1, body2, d + 1))
                continue

            if isinstance(a, (Impl, And, Or)) and type(a) is type(b):
                tasks.append((_PAIR, a.rhs, b.rhs, d))  # type: ignore[union-attr]
                tasks.append((_PAIR, a.lhs, b.lhs, d))  # type: ignore[union-attr]
                continue

            if isinstance(a, Eq) and isinstance(b, Eq):
                tasks.append((_PAIR, a.rhs, b.rhs, d))
                tasks.append((_PAIR, a.lhs, b.lhs, d))
                continue

            _retry_whnf(a, b, d, whnf, tasks)
        except UnificationError as failure:
            current = failure
            while True:
                if not attempts:
                    raise current
                base, ra, rb, d, snap = attempts.pop()
                del tasks[base:]
                store.restore(snap)
                if whnf is not None:
                    r1 = whnf(ra)
                    r2 = whnf(rb)
                    if (r1, r2) != (ra, rb):
                        # Progress was made, so retrying terminates:
                        # reduction is step-bounded and each retry
                        # requires fresh progress.
                        tasks.append((_PAIR, r1, r2, d))
                        break
                current = UnificationError(f"cannot unify {ra} with {rb}")


def _retry_whnf(
    t1: Term,
    t2: Term,
    depth: int,
    whnf: Optional[Reducer],
    tasks: list,
) -> None:
    """Last resort: weak-head normalize both sides and compare again."""
    if whnf is not None:
        r1 = whnf(t1)
        r2 = whnf(t2)
        if (r1, r2) != (t1, t2):
            # Progress was made, so retrying (with the reducer still
            # available for deeper positions) terminates: reduction is
            # step-bounded and each retry requires fresh progress.
            tasks.append((_PAIR, r1, r2, depth))
            return
    raise UnificationError(f"cannot unify {t1} with {t2}")


def _solve_meta(meta: Meta, value: Term, store: MetaStore, depth: int) -> None:
    value = store.resolve(value)
    if isinstance(value, Meta) and value.uid == meta.uid:
        return
    if meta.uid in meta_set(value):
        raise UnificationError(f"occurs check: ?{meta.uid}")
    if _mentions_canonical(value):
        raise UnificationError(
            f"scope violation: ?{meta.uid} would capture a bound variable"
        )
    store.solve(meta.uid, value)


def _mentions_canonical(term: Term) -> bool:
    return any(name.startswith("%") for name in free_var_set(term))
