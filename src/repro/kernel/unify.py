"""First-order unification with metavariables.

Used by ``apply``/``eapply`` (unify a lemma's conclusion with the
goal), ``rewrite`` (match an equation's left-hand side against
subterms), ``inversion`` (match constructor conclusions against a
hypothesis), and ``auto``/``eauto``.

Scope discipline: when unification descends under binders, both
binders are renamed to a shared canonical name (``%0``, ``%1``, ...).
A metavariable may never be solved by a term mentioning such a name —
that would smuggle a bound variable out of its scope.

Conversion: on a rigid/rigid head clash the unifier can consult an
optional ``whnf`` callback (weak-head normalization from
:mod:`repro.kernel.reduction`) and retry, approximating Coq's
unification-up-to-conversion in a controlled way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.errors import UnificationError
from repro.kernel.subst import subst_metas, subst_var
from repro.kernel.terms import (
    App,
    And,
    Const,
    Eq,
    Exists,
    FalseP,
    Forall,
    Impl,
    Lam,
    Meta,
    Or,
    Term,
    TrueP,
    Var,
    free_var_set,
    meta_set,
)

__all__ = ["MetaStore", "unify", "match_term"]

Reducer = Callable[[Term], Term]


@dataclass
class MetaStore:
    """Allocates metavariables and records their solutions."""

    next_uid: int = 0
    solutions: Dict[int, Term] = field(default_factory=dict)

    def fresh(self, hint: str = "?") -> Meta:
        meta = Meta(self.next_uid, hint)
        self.next_uid += 1
        return meta

    def solve(self, uid: int, term: Term) -> None:
        if uid in self.solutions:
            raise UnificationError(f"metavariable ?{uid} already solved")
        self.solutions[uid] = term

    def resolve(self, term: Term) -> Term:
        """Substitute all currently known solutions into ``term``."""
        return subst_metas(term, self.solutions)

    def is_solved(self, uid: int) -> bool:
        return uid in self.solutions

    def snapshot(self) -> Tuple[int, Dict[int, Term]]:
        """Capture both solutions *and* the uid counter.

        Restoring the counter matters for the Qed completeness check:
        metavariables allocated by failed/abandoned attempts must not
        linger as "unresolved existentials"."""
        return (self.next_uid, dict(self.solutions))

    def restore(self, snap: Tuple[int, Dict[int, Term]]) -> None:
        self.next_uid, self.solutions = snap[0], dict(snap[1])


def _canonical(level: int) -> str:
    # '%' cannot appear in parsed identifiers, so no user name collides.
    return f"%{level}"


def unify(
    t1: Term,
    t2: Term,
    store: MetaStore,
    whnf: Optional[Reducer] = None,
) -> None:
    """Unify ``t1`` with ``t2``, extending ``store`` with solutions.

    Raises :class:`UnificationError` on failure; on failure the store
    is rolled back to its state at entry.
    """
    snap = store.snapshot()
    try:
        _unify(t1, t2, store, 0, whnf)
    except UnificationError:
        store.restore(snap)
        raise


def match_term(
    pattern: Term,
    subject: Term,
    store: MetaStore,
    whnf: Optional[Reducer] = None,
) -> None:
    """One-sided unification: only ``pattern``'s metas may be solved.

    The caller guarantees ``subject`` contains no unsolved metas (goal
    terms normally do not, except under ``eapply``; rewrite callers
    resolve first).
    """
    unify(pattern, subject, store, whnf)


def _unify(
    t1: Term,
    t2: Term,
    store: MetaStore,
    depth: int,
    whnf: Optional[Reducer],
) -> None:
    t1 = store.resolve(t1)
    t2 = store.resolve(t2)

    if isinstance(t1, Meta):
        _solve_meta(t1, t2, store, depth)
        return
    if isinstance(t2, Meta):
        _solve_meta(t2, t1, store, depth)
        return

    if isinstance(t1, Var) and isinstance(t2, Var):
        if t1.name == t2.name:
            return
        raise UnificationError(f"variable clash: {t1.name} vs {t2.name}")

    if isinstance(t1, Const) and isinstance(t2, Const):
        if t1.name == t2.name:
            return
        _retry_whnf(t1, t2, store, depth, whnf)
        return

    if isinstance(t1, (TrueP, FalseP)) and type(t1) is type(t2):
        return

    if isinstance(t1, App) and isinstance(t2, App):
        if len(t1.args) == len(t2.args):
            try:
                _attempt(t1.fn, t2.fn, t1.args, t2.args, store, depth, whnf)
                return
            except UnificationError:
                _retry_whnf(t1, t2, store, depth, whnf)
                return
        _retry_whnf(t1, t2, store, depth, whnf)
        return

    if isinstance(t1, (Lam, Forall, Exists)) and type(t1) is type(t2):
        fresh = _canonical(depth)
        body1 = subst_var(t1.body, t1.var, Var(fresh))
        body2 = subst_var(t2.body, t2.var, Var(fresh))  # type: ignore[union-attr]
        _unify(body1, body2, store, depth + 1, whnf)
        return

    if isinstance(t1, (Impl, And, Or)) and type(t1) is type(t2):
        _unify(t1.lhs, t2.lhs, store, depth, whnf)  # type: ignore[union-attr]
        _unify(t1.rhs, t2.rhs, store, depth, whnf)  # type: ignore[union-attr]
        return

    if isinstance(t1, Eq) and isinstance(t2, Eq):
        _unify(t1.lhs, t2.lhs, store, depth, whnf)
        _unify(t1.rhs, t2.rhs, store, depth, whnf)
        return

    _retry_whnf(t1, t2, store, depth, whnf)


def _attempt(
    fn1: Term,
    fn2: Term,
    args1: Tuple[Term, ...],
    args2: Tuple[Term, ...],
    store: MetaStore,
    depth: int,
    whnf: Optional[Reducer],
) -> None:
    snap = store.snapshot()
    try:
        _unify(fn1, fn2, store, depth, whnf)
        for a, b in zip(args1, args2):
            _unify(a, b, store, depth, whnf)
    except UnificationError:
        store.restore(snap)
        raise


def _retry_whnf(
    t1: Term,
    t2: Term,
    store: MetaStore,
    depth: int,
    whnf: Optional[Reducer],
) -> None:
    """Last resort: weak-head normalize both sides and compare again."""
    if whnf is not None:
        r1 = whnf(t1)
        r2 = whnf(t2)
        if (r1, r2) != (t1, t2):
            # Progress was made, so retrying (with the reducer still
            # available for deeper positions) terminates: reduction is
            # step-bounded and each retry requires fresh progress.
            _unify(r1, r2, store, depth, whnf)
            return
    raise UnificationError(f"cannot unify {t1} with {t2}")


def _solve_meta(meta: Meta, value: Term, store: MetaStore, depth: int) -> None:
    value = store.resolve(value)
    if isinstance(value, Meta) and value.uid == meta.uid:
        return
    if meta.uid in meta_set(value):
        raise UnificationError(f"occurs check: ?{meta.uid}")
    if _mentions_canonical(value):
        raise UnificationError(
            f"scope violation: ?{meta.uid} would capture a bound variable"
        )
    store.solve(meta.uid, value)


def _mentions_canonical(term: Term) -> bool:
    return any(name.startswith("%") for name in free_var_set(term))
