"""Goals and proof states.

A :class:`Goal` is a Coq-style sequent: an ordered context of variable
declarations (``x : nat``) and hypotheses (``H : P``) above a
conclusion.  A :class:`ProofState` is the sequence of open goals (the
first is focused) plus the metavariable store shared by all of them
(``eapply`` can thread an existential through sibling goals, exactly
as in Coq).

States are immutable from the outside: the tactic runner clones the
metavariable store before a tactic mutates it, so search-tree siblings
never interfere — a requirement for best-first search, where many
alternative expansions of one state coexist.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import KernelError
from repro.kernel.env import Environment
from repro.kernel.pretty import pp_term, pp_type
from repro.kernel.subst import alpha_fingerprint, alpha_key, fresh_name
from repro.kernel.terms import Term, free_vars, intern, metas_of
from repro.kernel.types import TArrow, TCon, TVar, Type
from repro.kernel.unify import MetaStore

__all__ = ["VarDecl", "HypDecl", "Decl", "Goal", "ProofState", "initial_state"]


@dataclass(frozen=True)
class VarDecl:
    """A context variable declaration ``name : ty``."""

    name: str
    ty: Type

    def render(self) -> str:
        return f"{self.name} : {pp_type(self.ty)}"


@dataclass(frozen=True)
class HypDecl:
    """A context hypothesis ``name : prop``."""

    name: str
    prop: Term

    def render(self) -> str:
        return f"{self.name} : {pp_term(self.prop)}"


Decl = Union[VarDecl, HypDecl]


def _ty_key(ty: Type, canon: Dict[str, str], parts: List[str]) -> None:
    """Append a canonical token stream for ``ty`` to ``parts``.

    Inference-generated type variables (``?``-prefixed, from
    :func:`repro.kernel.types.fresh_tvar`) are numbered by first
    occurrence within one goal, so a goal's key no longer depends on
    the global fresh-tvar counter — loading the corpus with or without
    proof replay used to shift those names (``?A17`` vs ``?A243``) and
    silently change duplicate-state keys.
    """
    if isinstance(ty, TVar):
        name = ty.name
        if name.startswith("?"):
            name = canon.setdefault(name, f"?{len(canon)}")
        parts.append(f"tv:{name};")
    elif isinstance(ty, TCon):
        parts.append(f"tc:{ty.name}{len(ty.args)}(")
        for arg in ty.args:
            _ty_key(arg, canon, parts)
        parts.append(")")
    elif isinstance(ty, TArrow):
        parts.append("ar(")
        _ty_key(ty.dom, canon, parts)
        _ty_key(ty.cod, canon, parts)
        parts.append(")")
    else:
        raise AssertionError(f"unknown type node: {ty!r}")


def _ty_fp(ty: Type, canon: Dict[str, int]) -> int:
    """Integer counterpart of :func:`_ty_key` (same canonicalization)."""
    if isinstance(ty, TVar):
        if ty.name.startswith("?"):
            return hash(("tv?", canon.setdefault(ty.name, len(canon))))
        return hash(("tv", ty.name))
    if isinstance(ty, TCon):
        return hash(("tc", ty.name) + tuple(_ty_fp(a, canon) for a in ty.args))
    if isinstance(ty, TArrow):
        return hash(("ar", _ty_fp(ty.dom, canon), _ty_fp(ty.cod, canon)))
    raise AssertionError(f"unknown type node: {ty!r}")


@dataclass(frozen=True)
class Goal:
    """One sequent: context declarations above a conclusion."""

    decls: Tuple[Decl, ...]
    concl: Term

    # -- context queries -------------------------------------------------

    def names(self) -> List[str]:
        return [d.name for d in self.decls]

    def lookup(self, name: str) -> Optional[Decl]:
        for decl in self.decls:
            if decl.name == name:
                return decl
        return None

    def hyp(self, name: str) -> HypDecl:
        decl = self.lookup(name)
        if not isinstance(decl, HypDecl):
            raise KernelError(f"no hypothesis named {name}")
        return decl

    def var_types(self) -> Dict[str, Type]:
        """Context for the elaborator: every declared name's type.

        Hypotheses get no entry (they are proofs, not terms); variable
        declarations map to their type.
        """
        return {d.name: d.ty for d in self.decls if isinstance(d, VarDecl)}

    def fresh(self, base: str) -> str:
        return fresh_name(base, set(self.names()))

    # -- context updates (all return new goals) ---------------------------

    def add(self, decl: Decl) -> "Goal":
        if self.lookup(decl.name) is not None:
            raise KernelError(f"name already used: {decl.name}")
        return Goal(self.decls + (decl,), self.concl)

    def with_concl(self, concl: Term) -> "Goal":
        return Goal(self.decls, concl)

    def replace_decl(self, name: str, decl: Decl) -> "Goal":
        out = []
        found = False
        for d in self.decls:
            if d.name == name:
                out.append(decl)
                found = True
            else:
                out.append(d)
        if not found:
            raise KernelError(f"no declaration named {name}")
        return Goal(tuple(out), self.concl)

    def remove_decl(self, name: str) -> "Goal":
        out = [d for d in self.decls if d.name != name]
        if len(out) == len(self.decls):
            raise KernelError(f"no declaration named {name}")
        return Goal(tuple(out), self.concl)

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        """Coq-style goal display (context, bar, conclusion)."""
        lines = [decl.render() for decl in self.decls]
        lines.append("=" * 30)
        lines.append(pp_term(self.concl))
        return "\n".join(lines)

    def key(self, store: MetaStore) -> str:
        """Canonical identity of this goal, for duplicate detection.

        Invariant under bound-variable renaming (via ``alpha_key``)
        and under fresh-tvar counter offsets (via ``_ty_key``'s
        first-occurrence numbering of ``?``-variables).  This is the
        reference oracle for :meth:`fingerprint`.
        """
        canon: Dict[str, str] = {}
        parts = []
        for decl in self.decls:
            if isinstance(decl, VarDecl):
                ty_parts: List[str] = []
                _ty_key(decl.ty, canon, ty_parts)
                parts.append(f"V:{decl.name}:{''.join(ty_parts)}")
            else:
                parts.append(f"H:{decl.name}:{alpha_key(store.resolve(decl.prop))}")
        parts.append("|-")
        parts.append(alpha_key(store.resolve(self.concl)))
        return "\n".join(parts)

    def fingerprint(self, store: MetaStore) -> int:
        """O(1)-amortized integer counterpart of :meth:`key`.

        Equal exactly when :meth:`key` is equal (modulo 64-bit hash
        collisions); built from memoized per-term fingerprints, so a
        search step costs a handful of hash mixes instead of
        re-rendering every hypothesis.
        """
        canon: Dict[str, int] = {}
        parts: List[int] = []
        for decl in self.decls:
            if isinstance(decl, VarDecl):
                parts.append(hash(("V", decl.name, _ty_fp(decl.ty, canon))))
            else:
                parts.append(
                    hash(
                        ("H", decl.name,
                         alpha_fingerprint(store.resolve(decl.prop)))
                    )
                )
        parts.append(alpha_fingerprint(store.resolve(self.concl)))
        return hash(tuple(parts))


@dataclass(frozen=True)
class ProofState:
    """All open goals plus the shared metavariable store.

    The focused goal is ``goals[0]``.  The proof is complete when no
    goals remain and every metavariable ever created has a solution
    (Coq refuses ``Qed`` with unresolved existentials).
    """

    goals: Tuple[Goal, ...]
    store: MetaStore

    def focused(self) -> Goal:
        if not self.goals:
            raise KernelError("no goals remain")
        return self.goals[0]

    def is_complete(self) -> bool:
        if self.goals:
            return False
        return all(
            self.store.is_solved(uid) for uid in range(self.store.next_uid)
        )

    def num_goals(self) -> int:
        return len(self.goals)

    def replace_focused(self, new_goals: Sequence[Goal]) -> "ProofState":
        """Replace the focused goal with ``new_goals`` (possibly none)."""
        return ProofState(tuple(new_goals) + self.goals[1:], self.store)

    def with_goals(self, goals: Sequence[Goal]) -> "ProofState":
        return ProofState(tuple(goals), self.store)

    def resolve(self, term: Term) -> Term:
        return self.store.resolve(term)

    def clone_store(self) -> "ProofState":
        """A state whose store may be mutated without affecting siblings."""
        clone = MetaStore(self.store.next_uid, dict(self.store.solutions))
        return ProofState(self.goals, clone)

    def key(self) -> str:
        """Canonical identity of the whole state (paper: duplicate pruning).

        The string form; :meth:`fingerprint` is the fast default used
        by the search engines, with this kept as the reference oracle
        behind ``ProofChecker(state_keys="string")``.
        """
        return "\n---\n".join(goal.key(self.store) for goal in self.goals)

    def fingerprint(self) -> int:
        """O(1)-amortized duplicate-pruning key (see :meth:`Goal.fingerprint`)."""
        return hash(tuple(goal.fingerprint(self.store) for goal in self.goals))

    def render(self) -> str:
        if not self.goals:
            return "No more goals."
        blocks = []
        total = len(self.goals)
        for i, goal in enumerate(self.goals):
            header = f"goal {i + 1} of {total}:"
            resolved = Goal(
                tuple(
                    HypDecl(d.name, self.store.resolve(d.prop))
                    if isinstance(d, HypDecl)
                    else d
                    for d in goal.decls
                ),
                self.store.resolve(goal.concl),
            )
            blocks.append(f"{header}\n{resolved.render()}")
        return "\n\n".join(blocks)


def initial_state(env: Environment, statement: Term) -> ProofState:
    """The starting proof state for a lemma ``statement``."""
    del env  # reserved for future well-formedness checking
    # Hash-cons the root statement so every proof of a repeated lemma
    # shape shares one representative (and its stamped derived values).
    goal = Goal((), intern(statement))
    return ProofState((goal,), MetaStore())
