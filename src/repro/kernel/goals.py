"""Goals and proof states.

A :class:`Goal` is a Coq-style sequent: an ordered context of variable
declarations (``x : nat``) and hypotheses (``H : P``) above a
conclusion.  A :class:`ProofState` is the sequence of open goals (the
first is focused) plus the metavariable store shared by all of them
(``eapply`` can thread an existential through sibling goals, exactly
as in Coq).

States are immutable from the outside: the tactic runner clones the
metavariable store before a tactic mutates it, so search-tree siblings
never interfere — a requirement for best-first search, where many
alternative expansions of one state coexist.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import KernelError
from repro.kernel.env import Environment
from repro.kernel.pretty import pp_term, pp_type
from repro.kernel.subst import alpha_key, fresh_name
from repro.kernel.terms import Term, free_vars, metas_of
from repro.kernel.types import Type
from repro.kernel.unify import MetaStore

__all__ = ["VarDecl", "HypDecl", "Decl", "Goal", "ProofState", "initial_state"]


@dataclass(frozen=True)
class VarDecl:
    """A context variable declaration ``name : ty``."""

    name: str
    ty: Type

    def render(self) -> str:
        return f"{self.name} : {pp_type(self.ty)}"


@dataclass(frozen=True)
class HypDecl:
    """A context hypothesis ``name : prop``."""

    name: str
    prop: Term

    def render(self) -> str:
        return f"{self.name} : {pp_term(self.prop)}"


Decl = Union[VarDecl, HypDecl]


@dataclass(frozen=True)
class Goal:
    """One sequent: context declarations above a conclusion."""

    decls: Tuple[Decl, ...]
    concl: Term

    # -- context queries -------------------------------------------------

    def names(self) -> List[str]:
        return [d.name for d in self.decls]

    def lookup(self, name: str) -> Optional[Decl]:
        for decl in self.decls:
            if decl.name == name:
                return decl
        return None

    def hyp(self, name: str) -> HypDecl:
        decl = self.lookup(name)
        if not isinstance(decl, HypDecl):
            raise KernelError(f"no hypothesis named {name}")
        return decl

    def var_types(self) -> Dict[str, Type]:
        """Context for the elaborator: every declared name's type.

        Hypotheses get no entry (they are proofs, not terms); variable
        declarations map to their type.
        """
        return {d.name: d.ty for d in self.decls if isinstance(d, VarDecl)}

    def fresh(self, base: str) -> str:
        return fresh_name(base, set(self.names()))

    # -- context updates (all return new goals) ---------------------------

    def add(self, decl: Decl) -> "Goal":
        if self.lookup(decl.name) is not None:
            raise KernelError(f"name already used: {decl.name}")
        return Goal(self.decls + (decl,), self.concl)

    def with_concl(self, concl: Term) -> "Goal":
        return Goal(self.decls, concl)

    def replace_decl(self, name: str, decl: Decl) -> "Goal":
        out = []
        found = False
        for d in self.decls:
            if d.name == name:
                out.append(decl)
                found = True
            else:
                out.append(d)
        if not found:
            raise KernelError(f"no declaration named {name}")
        return Goal(tuple(out), self.concl)

    def remove_decl(self, name: str) -> "Goal":
        out = [d for d in self.decls if d.name != name]
        if len(out) == len(self.decls):
            raise KernelError(f"no declaration named {name}")
        return Goal(tuple(out), self.concl)

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        """Coq-style goal display (context, bar, conclusion)."""
        lines = [decl.render() for decl in self.decls]
        lines.append("=" * 30)
        lines.append(pp_term(self.concl))
        return "\n".join(lines)

    def key(self, store: MetaStore) -> str:
        """Canonical identity of this goal, for duplicate detection."""
        parts = []
        for decl in self.decls:
            if isinstance(decl, VarDecl):
                parts.append(f"V:{decl.name}:{pp_type(decl.ty)}")
            else:
                parts.append(f"H:{decl.name}:{alpha_key(store.resolve(decl.prop))}")
        parts.append("|-")
        parts.append(alpha_key(store.resolve(self.concl)))
        return "\n".join(parts)


@dataclass(frozen=True)
class ProofState:
    """All open goals plus the shared metavariable store.

    The focused goal is ``goals[0]``.  The proof is complete when no
    goals remain and every metavariable ever created has a solution
    (Coq refuses ``Qed`` with unresolved existentials).
    """

    goals: Tuple[Goal, ...]
    store: MetaStore

    def focused(self) -> Goal:
        if not self.goals:
            raise KernelError("no goals remain")
        return self.goals[0]

    def is_complete(self) -> bool:
        if self.goals:
            return False
        return all(
            self.store.is_solved(uid) for uid in range(self.store.next_uid)
        )

    def num_goals(self) -> int:
        return len(self.goals)

    def replace_focused(self, new_goals: Sequence[Goal]) -> "ProofState":
        """Replace the focused goal with ``new_goals`` (possibly none)."""
        return ProofState(tuple(new_goals) + self.goals[1:], self.store)

    def with_goals(self, goals: Sequence[Goal]) -> "ProofState":
        return ProofState(tuple(goals), self.store)

    def resolve(self, term: Term) -> Term:
        return self.store.resolve(term)

    def clone_store(self) -> "ProofState":
        """A state whose store may be mutated without affecting siblings."""
        clone = MetaStore(self.store.next_uid, dict(self.store.solutions))
        return ProofState(self.goals, clone)

    def key(self) -> str:
        """Canonical identity of the whole state (paper: duplicate pruning)."""
        return "\n---\n".join(goal.key(self.store) for goal in self.goals)

    def render(self) -> str:
        if not self.goals:
            return "No more goals."
        blocks = []
        total = len(self.goals)
        for i, goal in enumerate(self.goals):
            header = f"goal {i + 1} of {total}:"
            resolved = Goal(
                tuple(
                    HypDecl(d.name, self.store.resolve(d.prop))
                    if isinstance(d, HypDecl)
                    else d
                    for d in goal.decls
                ),
                self.store.resolve(goal.concl),
            )
            blocks.append(f"{header}\n{resolved.render()}")
        return "\n\n".join(blocks)


def initial_state(env: Environment, statement: Term) -> ProofState:
    """The starting proof state for a lemma ``statement``."""
    del env  # reserved for future well-formedness checking
    goal = Goal((), statement)
    return ProofState((goal,), MetaStore())
