"""Reduction: ``simpl``, weak-head normalization, and ``unfold``.

The kernel's computation rules are:

* **beta** — ``(fun x => b) a`` reduces to ``b[x := a]``.
* **iota** — a fully applied :class:`~repro.kernel.definitions.Fixpoint`
  reduces by its first *matching* pattern equation.  An equation
  requiring a constructor where the argument is not constructor-headed
  *blocks* reduction (first-match semantics, like a compiled ``match``).
* **delta** — an :class:`~repro.kernel.definitions.Abbreviation`
  unfolds to its body.  ``simpl`` never performs delta (matching Coq,
  where ``simpl`` does not unfold ``Definition``s like ``incl``);
  ``unfold`` and weak-head normalization do.

All entry points are *step-budgeted*: on budget exhaustion they return
the partially reduced term rather than raising, so a pathological
``simpl`` degrades gracefully (the tactic-level wall-clock timeout is
the paper's 5 s validity criterion; the budget keeps single reductions
finite well before that).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro import deadline as _deadline
from repro.errors import TacticTimeout
from repro.kernel import cache as _cache
from repro.kernel.definitions import Abbreviation, FixEquation, Fixpoint
from repro.kernel.env import Environment
from repro.kernel.subst import subst_vars
from repro.kernel.terms import (
    App,
    And,
    Const,
    Eq,
    Exists,
    FalseP,
    Forall,
    Impl,
    Lam,
    Meta,
    Or,
    Term,
    TrueP,
    Var,
    app,
)

__all__ = ["Budget", "simpl", "whnf", "unfold", "make_whnf"]

DEFAULT_BUDGET = 20_000

# How many spend() calls between wall-clock polls.  Deadline checks
# read a clock, so they are amortized: one poll per interval keeps the
# overhead invisible while still interrupting a pathological reduction
# within a few thousand steps of its budget.
DEADLINE_CHECK_INTERVAL = 512


@dataclass
class Budget:
    """A mutable step counter shared across one reduction call tree.

    When a tactic-level :class:`repro.deadline.Deadline` is active for
    this thread, the budget polls it every
    :data:`DEADLINE_CHECK_INTERVAL` steps and raises
    :class:`repro.errors.TacticTimeout` on expiry — so a slow reduction
    inside ``simpl``/``whnf`` is interrupted *at* the tactic budget
    instead of running to step exhaustion first.
    """

    remaining: int = DEFAULT_BUDGET
    deadline: Optional["_deadline.Deadline"] = None
    _until_check: int = field(default=DEADLINE_CHECK_INTERVAL, repr=False)

    def __post_init__(self) -> None:
        if self.deadline is None:
            self.deadline = _deadline.active_deadline()

    def spend(self) -> bool:
        """Consume one step; False when exhausted.

        Raises :class:`~repro.errors.TacticTimeout` when the governing
        wall-clock deadline has expired.
        """
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        if self.deadline is not None:
            self._until_check -= 1
            if self._until_check <= 0:
                self._until_check = DEADLINE_CHECK_INTERVAL
                if self.deadline.expired():
                    raise TacticTimeout(_deadline.TIMEOUT_MESSAGE)
        return True


class _Blocked(Exception):
    """Internal: the subject is not constructor-headed — reduction is
    stuck (a compiled ``match`` would be stuck here too)."""


class _Clash(Exception):
    """Internal: the subject exposes a *different* constructor — this
    equation definitely does not apply; try the next one."""


def _match_pattern(
    env: Environment,
    pattern: Term,
    subject: Term,
    binding: Dict[str, Term],
    budget: Budget,
    reduce_arg: bool,
) -> Term:
    """Match ``pattern`` against ``subject``.

    Returns the (possibly weak-head-reduced) subject actually matched.
    Raises :class:`_Clash` on a definite constructor mismatch and
    :class:`_Blocked` when the subject cannot expose a constructor at
    all.  Variables bind into ``binding``.
    """
    if isinstance(pattern, Var):
        binding[pattern.name] = subject
        return subject
    # Pattern is a constructor application (or bare constructor).
    if reduce_arg:
        subject = whnf(env, subject, budget)
    pat_head, pat_args = _decompose(pattern)
    subj_head, subj_args = _decompose(subject)
    if not isinstance(pat_head, Const):
        raise _Blocked()
    if not (
        isinstance(subj_head, Const) and env.is_constructor(subj_head.name)
    ):
        raise _Blocked()
    if pat_head.name != subj_head.name or len(pat_args) != len(subj_args):
        raise _Clash()
    matched_args: List[Term] = []
    for pat_arg, subj_arg in zip(pat_args, subj_args):
        matched_args.append(
            _match_pattern(env, pat_arg, subj_arg, binding, budget, reduce_arg)
        )
    return app(subj_head, *matched_args)


def _decompose(term: Term) -> Tuple[Term, Tuple[Term, ...]]:
    if isinstance(term, App):
        return term.fn, term.args
    return term, ()


def _try_iota(
    env: Environment,
    fix: Fixpoint,
    args: Tuple[Term, ...],
    budget: Budget,
    reduce_args: bool,
) -> Optional[Tuple[Term, Tuple[Term, ...]]]:
    """Try the fixpoint's equations; return (rhs, extra_args) on success.

    ``extra_args`` are arguments beyond the fixpoint's arity (possible
    when the result type is itself a function).  Returns ``None`` when
    reduction is blocked.
    """
    arity = fix.arity()
    if len(args) < arity:
        return None
    eq_args, extra = args[:arity], args[arity:]
    current = list(eq_args)
    for equation in fix.equations:
        binding: Dict[str, Term] = {}
        matched: List[Term] = []
        try:
            for i, (pat, subj) in enumerate(zip(equation.patterns, current)):
                matched.append(
                    _match_pattern(env, pat, subj, binding, budget, reduce_args)
                )
                current[i] = matched[i]
            rhs = subst_vars(equation.rhs, binding)
            return rhs, extra
        except _Clash:
            continue  # definite mismatch: try the next equation
        except _Blocked:
            # First-match semantics: a blocked equation stops the whole
            # reduction (a compiled match would be stuck here too).
            return None
    return None


_WHNF_CACHE = _cache.BoundedCache("whnf", capacity=32_768)
_SIMPL_CACHE = _cache.BoundedCache("simpl", capacity=32_768)

# Deferred import cache: arena imports terms; reduction reaches it
# lazily, mirroring terms.py/subst.py.
_ARENA_MOD = None


def _arena():
    global _ARENA_MOD
    if _ARENA_MOD is None:
        from repro.kernel import arena as mod

        _ARENA_MOD = mod
    return _ARENA_MOD


def _memo_reduce(cache, compute, env, term, budget: Budget) -> Term:
    """Memoize a budgeted reduction with *exact* step accounting.

    A cache entry stores ``(result, steps)`` recorded from a run that
    finished with budget to spare — so ``steps`` is the reduction's
    true cost, independent of the caller's budget.  On a hit we charge
    those steps to the caller's budget when affordable (bit-for-bit
    identical to replaying) and otherwise replay honestly, so partial
    results under tiny budgets match the uncached kernel exactly.
    Entries key on the term's arena id (plus the arena generation —
    ids are meaningless across epochs), the environment object, and
    its declaration generation: corpus loading mutates the environment
    between proofs, and a new declaration must never be answered from
    a stale entry.
    """
    arena = _arena().current()
    key = (env, env.generation, arena.generation, arena.intern_id(term))
    hit = cache.get(key)
    if hit is not None:
        result, steps = hit
        if steps <= budget.remaining:
            budget.remaining -= steps
            return result
        return compute(env, term, budget)
    before = budget.remaining
    result = compute(env, term, budget)
    if budget.remaining > 0:
        # The run returned with budget left, so it completed; had it
        # been cut off, spend() would have driven remaining to 0.
        cache.put(key, (result, before - budget.remaining))
    return result


def whnf(env: Environment, term: Term, budget: Optional[Budget] = None) -> Term:
    """Weak-head normal form: beta + iota + delta at the head only."""
    if budget is None:
        budget = Budget()
    if not _cache.enabled():
        return _whnf(env, term, budget)
    return _memo_reduce(_WHNF_CACHE, _whnf, env, term, budget)


def _whnf(env: Environment, term: Term, budget: Budget) -> Term:
    while budget.spend():
        head, args = _decompose(term)
        # beta
        if isinstance(head, Lam) and args:
            body = subst_vars(head.body, {head.var: args[0]})
            term = app(body, *args[1:])
            continue
        if not isinstance(head, Const):
            return term
        fix = env.fixpoints.get(head.name)
        if fix is not None:
            result = _try_iota(env, fix, args, budget, reduce_args=True)
            if result is None:
                return term
            rhs, extra = result
            term = app(rhs, *extra) if extra else rhs
            continue
        abbr = env.abbreviations.get(head.name)
        if abbr is not None and len(args) >= len(abbr.params):
            n = len(abbr.params)
            binding = {name: arg for (name, _), arg in zip(abbr.params, args[:n])}
            body = subst_vars(abbr.body, binding)
            term = app(body, *args[n:])
            continue
        return term
    return term


def make_whnf(env: Environment):
    """A unary weak-head reducer bound to ``env`` (for the unifier)."""

    def reducer(term: Term) -> Term:
        return whnf(env, term, Budget(2_000))

    return reducer


# Worklist opcodes for the simpl machine.
_VISIT, _APP_C, _BIND_C, _PAIR_C, _STORE = 0, 1, 2, 3, 4


def simpl(env: Environment, term: Term, budget: Optional[Budget] = None) -> Term:
    """Full bottom-up normalization by beta + iota (no delta).

    Matches Coq's ``simpl`` closely enough for this corpus: recursive
    functions compute on constructor-headed data, but transparent
    ``Definition``s stay folded until ``unfold``.

    Runs as an iterative visit/combine machine (deep terms never hit
    the recursion limit), memoized per *node* with the same exact step
    accounting as :func:`_memo_reduce`: each entry records the
    subtree's true reduction cost, a hit charges those steps when the
    caller's budget affords them and replays honestly otherwise, and
    nothing is stored from a run that exhausted its budget — so
    partial results under tiny budgets match the uncached kernel
    bit-for-bit.
    """
    if budget is None:
        budget = Budget()
    use_cache = _cache.enabled()
    arena = None
    gen = 0
    if use_cache:
        arena = _arena().current()
        gen = arena.generation

    tasks: list = [(_VISIT, term)]
    vals: list = []
    while tasks:
        frame = tasks.pop()
        op = frame[0]
        if op == _VISIT:
            node = frame[1]
            memo_key = None
            if use_cache:
                memo_key = (env, env.generation, gen, arena.intern_id(node))
                hit = _SIMPL_CACHE.get(memo_key)
                if hit is not None:
                    result, steps = hit
                    if steps <= budget.remaining:
                        budget.remaining -= steps
                        vals.append(result)
                        continue
                    # Unaffordable: fall through and replay honestly.
            before = budget.remaining
            if not budget.spend():
                vals.append(node)
                continue
            cls = node.__class__
            if cls is Var or cls is Const or cls is TrueP or cls is FalseP or cls is Meta:
                if memo_key is not None:
                    _SIMPL_CACHE.put(memo_key, (node, 1))
                vals.append(node)
                continue
            if cls is App:
                tasks.append((_APP_C, node, memo_key, before))
                for arg in reversed(node.args):
                    tasks.append((_VISIT, arg))
                tasks.append((_VISIT, node.fn))
            elif cls is Lam or cls is Forall or cls is Exists:
                tasks.append((_BIND_C, node, memo_key, before))
                tasks.append((_VISIT, node.body))
            elif cls is Impl or cls is And or cls is Or or cls is Eq:
                tasks.append((_PAIR_C, node, memo_key, before))
                tasks.append((_VISIT, node.rhs))
                tasks.append((_VISIT, node.lhs))
            else:
                raise AssertionError(f"unknown term node: {node!r}")
        elif op == _APP_C:
            _, node, memo_key, before = frame
            n = len(node.args)
            fn = vals[-(n + 1)]
            args = tuple(vals[-n:])
            del vals[-(n + 1):]
            reduced = _head_step(env, fn, args, budget)
            if reduced is not None:
                # The redex's normal form is this node's result; the
                # STORE frame waits for it so the memo still records
                # this node's full cost.
                if memo_key is not None:
                    tasks.append((_STORE, memo_key, before))
                tasks.append((_VISIT, reduced))
            else:
                result = app(fn, *args)
                if memo_key is not None and budget.remaining > 0:
                    _SIMPL_CACHE.put(
                        memo_key, (result, before - budget.remaining)
                    )
                vals.append(result)
        elif op == _BIND_C:
            _, node, memo_key, before = frame
            result = node.__class__(node.var, node.ty, vals.pop())
            if memo_key is not None and budget.remaining > 0:
                _SIMPL_CACHE.put(memo_key, (result, before - budget.remaining))
            vals.append(result)
        elif op == _PAIR_C:
            _, node, memo_key, before = frame
            rhs = vals.pop()
            lhs = vals.pop()
            if node.__class__ is Eq:
                result = Eq(node.ty, lhs, rhs)
            else:
                result = node.__class__(lhs, rhs)
            if memo_key is not None and budget.remaining > 0:
                _SIMPL_CACHE.put(memo_key, (result, before - budget.remaining))
            vals.append(result)
        else:  # _STORE
            _, memo_key, before = frame
            if budget.remaining > 0:
                _SIMPL_CACHE.put(
                    memo_key, (vals[-1], before - budget.remaining)
                )
    return vals[0]


def _head_step(
    env: Environment,
    fn: Term,
    args: Tuple[Term, ...],
    budget: Budget,
) -> Optional[Term]:
    """One beta or iota step at an application head, or ``None``."""
    if isinstance(fn, Lam) and args:
        body = subst_vars(fn.body, {fn.var: args[0]})
        return app(body, *args[1:])
    if isinstance(fn, Const):
        fix = env.fixpoints.get(fn.name)
        if fix is not None:
            # Arguments are already simplified; do not re-reduce them.
            result = _try_iota(env, fix, args, budget, reduce_args=False)
            if result is not None:
                rhs, extra = result
                return app(rhs, *extra) if extra else rhs
    return None


def unfold(
    env: Environment,
    term: Term,
    names: Iterable[str],
    budget: Optional[Budget] = None,
) -> Term:
    """Delta-unfold the given constants everywhere, then beta-reduce.

    Abbreviations are replaced by their bodies (eta-expanding partial
    applications); fixpoint names additionally get iota steps at
    positions where their arguments already expose constructors.
    """
    if budget is None:
        budget = Budget()
    name_set = set(names)
    previous = None
    current = term
    while previous != current and budget.spend():
        previous = current
        current = _unfold_pass(env, current, name_set, budget)
    return current


def _unfold_pass(
    env: Environment, term: Term, names: set, budget: Budget
) -> Term:
    if isinstance(term, Const) and term.name in names:
        abbr = env.abbreviations.get(term.name)
        if abbr is not None:
            return _abbr_as_lambda(abbr)
        return term
    if isinstance(term, (Var, Const, TrueP, FalseP, Meta)):
        return term
    if isinstance(term, App):
        fn = term.fn
        args = tuple(_unfold_pass(env, a, names, budget) for a in term.args)
        if isinstance(fn, Const) and fn.name in names:
            abbr = env.abbreviations.get(fn.name)
            if abbr is not None:
                n = len(abbr.params)
                if len(args) >= n:
                    binding = {
                        name: arg
                        for (name, _), arg in zip(abbr.params, args[:n])
                    }
                    body = subst_vars(abbr.body, binding)
                    return app(body, *args[n:])
                return app(_abbr_as_lambda(abbr), *args)
            fix = env.fixpoints.get(fn.name)
            if fix is not None:
                result = _try_iota(env, fix, args, budget, reduce_args=False)
                if result is not None:
                    rhs, extra = result
                    return app(rhs, *extra) if extra else rhs
            return app(fn, *args)
        fn = _unfold_pass(env, fn, names, budget)
        reduced = _head_step(env, fn, args, budget)
        if reduced is not None:
            return reduced
        return app(fn, *args)
    if isinstance(term, Lam):
        return Lam(term.var, term.ty, _unfold_pass(env, term.body, names, budget))
    if isinstance(term, Forall):
        return Forall(term.var, term.ty, _unfold_pass(env, term.body, names, budget))
    if isinstance(term, Exists):
        return Exists(term.var, term.ty, _unfold_pass(env, term.body, names, budget))
    if isinstance(term, Impl):
        return Impl(
            _unfold_pass(env, term.lhs, names, budget),
            _unfold_pass(env, term.rhs, names, budget),
        )
    if isinstance(term, And):
        return And(
            _unfold_pass(env, term.lhs, names, budget),
            _unfold_pass(env, term.rhs, names, budget),
        )
    if isinstance(term, Or):
        return Or(
            _unfold_pass(env, term.lhs, names, budget),
            _unfold_pass(env, term.rhs, names, budget),
        )
    if isinstance(term, Eq):
        return Eq(
            term.ty,
            _unfold_pass(env, term.lhs, names, budget),
            _unfold_pass(env, term.rhs, names, budget),
        )
    raise AssertionError(f"unknown term node: {term!r}")


def _abbr_as_lambda(abbr: Abbreviation) -> Term:
    body = abbr.body
    for name, ty in reversed(abbr.params):
        body = Lam(name, ty, body)
    return body
