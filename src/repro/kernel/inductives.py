"""Inductive datatypes and inductive predicates.

Two flavours mirror the two ways FSCQ (and Coq generally) uses
``Inductive``:

* :class:`Inductive` — a *datatype* (``nat``, ``list``, ``dirtree``).
  Constructors carry argument types; the ``induction``/``destruct``
  tactics consume these to build case subgoals, and an argument whose
  type is the inductive itself yields an induction hypothesis.  As in
  Coq's default scheme, recursion *nested under another type
  constructor* (e.g. ``TreeDir : list (prod string dirtree) ->
  dirtree``) does not get a hypothesis.

* :class:`InductivePred` — an inductively defined *proposition*
  (``Forall``, ``NoDup``, ``le``, ``tree_names_distinct``, the CHL
  ``hoare`` rules).  Constructors are ordinary closed statements
  (terms of type ``Prop``); the ``constructor`` tactic applies them
  and ``inversion`` case-analyses them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.kernel.terms import Term
from repro.kernel.types import TCon, TVar, Type, arrows

__all__ = ["DataConstructor", "Inductive", "PredConstructor", "InductivePred"]


@dataclass(frozen=True)
class DataConstructor:
    """One constructor of an inductive datatype.

    ``arg_types`` may mention the parent inductive (direct recursion)
    and the datatype's type parameters as :class:`TVar` nodes.
    ``arg_hints`` optionally suggests binder names for case subgoals
    (e.g. ``('x', 'l')`` for ``cons``).
    """

    name: str
    arg_types: Tuple[Type, ...] = ()
    arg_hints: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.arg_hints and len(self.arg_hints) != len(self.arg_types):
            raise ValueError(
                f"constructor {self.name}: {len(self.arg_hints)} hints for "
                f"{len(self.arg_types)} arguments"
            )


@dataclass(frozen=True)
class Inductive:
    """An inductive datatype declaration."""

    name: str
    params: Tuple[str, ...]  # type-parameter names, e.g. ('A',)
    constructors: Tuple[DataConstructor, ...]

    def applied(self) -> Type:
        """The datatype applied to its own parameters, e.g. ``list A``."""
        return TCon(self.name, tuple(TVar(p) for p in self.params))

    def constructor_type(self, ctor: DataConstructor) -> Type:
        """The (polymorphic) type of ``ctor`` as a signature constant."""
        return arrows(*ctor.arg_types, self.applied())

    def constructor_named(self, name: str) -> Optional[DataConstructor]:
        for ctor in self.constructors:
            if ctor.name == name:
                return ctor
        return None

    def is_recursive_arg(self, arg_type: Type) -> bool:
        """Does ``arg_type`` denote *direct* recursion into this type?"""
        return isinstance(arg_type, TCon) and arg_type.name == self.name


@dataclass(frozen=True)
class PredConstructor:
    """One introduction rule of an inductive predicate.

    ``statement`` is a closed term, e.g. for ``Forall_cons``::

        forall (P : A -> Prop) (x : A) (l : list A),
          P x -> Forall P l -> Forall P (x :: l)
    """

    name: str
    statement: Term


@dataclass(frozen=True)
class InductivePred:
    """An inductively defined proposition."""

    name: str
    ty: Type  # e.g. (A -> Prop) -> list A -> Prop
    constructors: Tuple[PredConstructor, ...]

    def constructor_named(self, name: str) -> Optional[PredConstructor]:
        for ctor in self.constructors:
            if ctor.name == name:
                return ctor
        return None
