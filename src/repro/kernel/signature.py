"""The constant signature: what every global name means and its type.

A :class:`Signature` maps constant names to :class:`ConstInfo`
records.  The environment (:mod:`repro.kernel.env`) populates it from
inductive declarations, definitions, and opaque declarations; the
typechecker and unifier consult it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.errors import EnvironmentError_
from repro.kernel.types import Type

__all__ = ["ConstKind", "ConstInfo", "Signature"]


class ConstKind(enum.Enum):
    """What sort of global a constant name refers to."""

    CONSTRUCTOR = "constructor"  # data constructor (injective, disjoint)
    FIXPOINT = "fixpoint"  # recursive definition (iota-reduces)
    ABBREVIATION = "abbreviation"  # transparent definition (delta-unfolds)
    OPAQUE = "opaque"  # declared constant with no computation rules
    INDUCTIVE_PRED = "inductive_pred"  # inductively defined proposition


@dataclass(frozen=True)
class ConstInfo:
    """Signature entry for one constant."""

    name: str
    ty: Type
    kind: ConstKind
    parent: Optional[str] = None  # owning inductive for constructors


class Signature:
    """A name -> :class:`ConstInfo` table with duplicate detection."""

    def __init__(self) -> None:
        self._table: Dict[str, ConstInfo] = {}

    def add(self, info: ConstInfo) -> None:
        if info.name in self._table:
            raise EnvironmentError_(f"duplicate constant: {info.name}")
        self._table[info.name] = info

    def lookup(self, name: str) -> ConstInfo:
        info = self._table.get(name)
        if info is None:
            raise EnvironmentError_(f"unknown constant: {name}")
        return info

    def get(self, name: str) -> Optional[ConstInfo]:
        return self._table.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._table

    def __iter__(self) -> Iterator[str]:
        return iter(self._table)

    def __len__(self) -> int:
        return len(self._table)

    def copy(self) -> "Signature":
        clone = Signature()
        clone._table = dict(self._table)
        return clone
