"""Coq-style pretty printing of kernel terms and types.

The output is designed to round-trip through
:mod:`repro.kernel.parser`: ``parse_term(pp_term(t))`` is
alpha-equivalent to ``t`` for all printable terms.  Prompts shown to
the (simulated) LLM are produced here, so the concrete syntax
intentionally mimics Coq's: ``::``, ``++``, ``/\\``, ``~``, ``|->``,
``=p=>`` and decimal numerals.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.kernel.terms import (
    App,
    And,
    Const,
    Eq,
    Exists,
    FalseP,
    Forall,
    Impl,
    Lam,
    Meta,
    Or,
    Term,
    TrueP,
    Var,
    as_nat_lit,
    is_neg,
    neg_body,
)
from repro.kernel.types import TArrow, TCon, TVar, Type

__all__ = ["pp_term", "pp_type", "INFIX_CONSTS"]

# Precedence levels: higher binds tighter.
_P_QUANT = 0
_P_IMPL = 10
_P_OR = 20
_P_AND = 30
_P_NOT = 40
_P_CMP = 50
_P_CONS = 60  # :: and ++ (right associative)
_P_ADD = 70
_P_MUL = 80
_P_PTSTO = 90  # |-> binds tighter than * (FSCQ: F * a |-> v)
_P_APP = 100
_P_ATOM = 110

# Constant name -> (symbol, precedence, associativity).
INFIX_CONSTS = {
    "cons": ("::", _P_CONS, "right"),
    "app": ("++", _P_CONS, "right"),
    "add": ("+", _P_ADD, "left"),
    "sub": ("-", _P_ADD, "left"),
    "mult": ("*", _P_MUL, "left"),
    "sep_star": ("*", _P_MUL, "right"),
    "le": ("<=", _P_CMP, "none"),
    "lt": ("<", _P_CMP, "none"),
    "pimpl": ("=p=>", _P_CMP, "none"),
    "ptsto": ("|->", _P_PTSTO, "none"),
}


def pp_term(term: Term) -> str:
    """Render ``term`` in Coq-like concrete syntax."""
    return _pp(term, _P_QUANT)


def _parens(text: str, level: int, context: int) -> str:
    return f"({text})" if level < context else text


def _pp(term: Term, context: int) -> str:
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Const):
        lit = as_nat_lit(term)
        if lit is not None:
            return str(lit)
        return term.name
    if isinstance(term, Meta):
        return f"?{term.hint}{term.uid}"
    if isinstance(term, TrueP):
        return "True"
    if isinstance(term, FalseP):
        return "False"
    if is_neg(term):
        body = _pp(neg_body(term), _P_NOT + 1)
        return _parens(f"~ {body}", _P_NOT, context)
    if isinstance(term, Impl):
        text = f"{_pp(term.lhs, _P_IMPL + 1)} -> {_pp(term.rhs, _P_IMPL)}"
        return _parens(text, _P_IMPL, context)
    if isinstance(term, And):
        text = f"{_pp(term.lhs, _P_AND + 1)} /\\ {_pp(term.rhs, _P_AND)}"
        return _parens(text, _P_AND, context)
    if isinstance(term, Or):
        text = f"{_pp(term.lhs, _P_OR + 1)} \\/ {_pp(term.rhs, _P_OR)}"
        return _parens(text, _P_OR, context)
    if isinstance(term, Eq):
        text = f"{_pp(term.lhs, _P_CMP + 1)} = {_pp(term.rhs, _P_CMP + 1)}"
        return _parens(text, _P_CMP, context)
    if isinstance(term, Forall):
        return _parens(_pp_binder("forall", term), _P_QUANT, context)
    if isinstance(term, Exists):
        return _parens(_pp_binder("exists", term), _P_QUANT, context)
    if isinstance(term, Lam):
        binder = term.var if term.ty is None else f"({term.var} : {pp_type(term.ty)})"
        text = f"fun {binder} => {_pp(term.body, _P_QUANT)}"
        return _parens(text, _P_QUANT, context)
    if isinstance(term, App):
        lit = as_nat_lit(term)
        if lit is not None:
            return str(lit)
        if isinstance(term.fn, Const) and len(term.args) == 2:
            infix = INFIX_CONSTS.get(term.fn.name)
            if infix is not None:
                return _pp_infix(term.fn.name, term.args, infix, context)
        fn_text = _pp(term.fn, _P_APP)
        args_text = " ".join(_pp(a, _P_ATOM) for a in term.args)
        return _parens(f"{fn_text} {args_text}", _P_APP, context)
    raise AssertionError(f"unknown term node: {term!r}")


def _pp_infix(
    name: str,
    args: Tuple[Term, ...],
    spec: Tuple[str, int, str],
    context: int,
) -> str:
    symbol, level, assoc = spec
    left_ctx = level if assoc == "left" else level + 1
    right_ctx = level if assoc == "right" else level + 1
    text = f"{_pp(args[0], left_ctx)} {symbol} {_pp(args[1], right_ctx)}"
    return _parens(text, level, context)


def _pp_binder(keyword: str, term: Term) -> str:
    """Fuse consecutive same-kind binders: ``forall (x y : nat) (l : ...)``."""
    cls = type(term)
    groups: list = []  # list of ([names], ty)
    body = term
    while isinstance(body, cls):
        name, ty = body.var, body.ty
        if groups and groups[-1][1] == ty and ty is not None:
            groups[-1][0].append(name)
        else:
            groups.append(([name], ty))
        body = body.body
    rendered = []
    for names, ty in groups:
        joined = " ".join(names)
        if ty is None:
            rendered.append(joined)
        else:
            rendered.append(f"({joined} : {pp_type(ty)})")
    return f"{keyword} {' '.join(rendered)}, {_pp(body, _P_QUANT)}"


def pp_type(ty: Type) -> str:
    """Render a type in concrete syntax."""
    return _pp_ty(ty, 0)


def _pp_ty(ty: Type, context: int) -> str:
    if isinstance(ty, TVar):
        return ty.name.lstrip("?")
    if isinstance(ty, TCon):
        if not ty.args:
            return ty.name
        args = " ".join(_pp_ty(a, 2) for a in ty.args)
        text = f"{ty.name} {args}"
        return f"({text})" if context >= 2 else text
    if isinstance(ty, TArrow):
        text = f"{_pp_ty(ty.dom, 1)} -> {_pp_ty(ty.cod, 0)}"
        return f"({text})" if context >= 1 else text
    raise AssertionError(f"unknown type node: {ty!r}")
