"""Substitution and alpha-equivalence on kernel terms.

Three related operations live here:

* :func:`subst_var` — capture-avoiding substitution of a term for a
  free variable.
* :func:`subst_metas` — instantiation of metavariables from a solution
  map (metavariables are never bound, so no capture can occur through
  them, but the *replacement* may mention variables that a binder in
  the target would capture; we rename binders away from those too).
* :func:`alpha_eq` / :func:`alpha_key` — alpha-equivalence test and a
  canonical string key used for duplicate-proof-state detection in the
  best-first search (the paper prunes tactics that recreate an already
  visited state).
* :func:`alpha_fingerprint` — the integer counterpart of
  :func:`alpha_key`: an alpha-invariant structural hash (bound
  variables enter by de Bruijn *index*, so closed subterms hash
  position-independently and their fingerprints memoize per node).
  The search engine's duplicate-state keys are built from these.

The hot traversals (``subst_vars``, ``subst_metas``) run as
**iterative worklist machines** — an explicit task stack of
visit/combine frames and a value stack — so substitution through a
5000-deep term never touches Python's recursion limit.  Both memoize
*per node* through :mod:`repro.kernel.cache`, keyed by arena id
(:mod:`repro.kernel.arena`) plus the substitution context, so a
subterm shared between goals resolves once per epoch instead of once
per call.  ``alpha_fingerprint`` delegates to the arena's fingerprint
array; ``alpha_key`` stays a recursive string builder — it is the
*oracle* the property suite checks the fingerprints against, so it
deliberately remains the simple spec-shaped walk.  Substitution
preserves node identity when nothing changes, so memo keys stay
coherent downstream.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Set, Tuple

from repro.kernel import cache as _cache
from repro.kernel.terms import (
    App,
    And,
    Const,
    Eq,
    Exists,
    FalseP,
    Forall,
    Impl,
    Lam,
    Meta,
    Or,
    Term,
    TrueP,
    Var,
    app,
    free_var_set,
    free_vars,
    meta_set,
)

__all__ = [
    "fresh_name",
    "rename_bound",
    "subst_var",
    "subst_vars",
    "subst_metas",
    "alpha_eq",
    "alpha_key",
    "alpha_fingerprint",
]


# Deferred import cache: arena imports terms, and keeping this module
# import-light mirrors terms.py's lazy arena hook.
_ARENA_MOD = None


def _arena():
    global _ARENA_MOD
    if _ARENA_MOD is None:
        from repro.kernel import arena as mod

        _ARENA_MOD = mod
    return _ARENA_MOD


def fresh_name(base: str, taken: Set[str]) -> str:
    """A variant of ``base`` not in ``taken`` (``x``, ``x0``, ``x1``...)."""
    if base not in taken:
        return base
    stem = base.rstrip("0123456789") or base
    index = 0
    while True:
        candidate = f"{stem}{index}"
        if candidate not in taken:
            return candidate
        index += 1


def _binder_cls(term: Term):
    return type(term)


def rename_bound(term: Term, old: str, new: str) -> Term:
    """Rename the binder variable of a binder node (caller checks kind)."""
    if isinstance(term, (Lam, Forall, Exists)):
        body = subst_var(term.body, old, Var(new))
        return _binder_cls(term)(new, term.ty, body)
    raise ValueError(f"not a binder: {term!r}")


def subst_var(term: Term, name: str, replacement: Term) -> Term:
    """Capture-avoiding ``term[name := replacement]``."""
    return subst_vars(term, {name: replacement})


_SUBST_CACHE = _cache.BoundedCache("subst_vars", capacity=65_536)

# Worklist opcodes shared by the two substitution machines.
_VISIT, _APP, _BIND, _PAIR = 0, 1, 2, 3

_LEAVES = (Const, TrueP, FalseP)


def subst_vars(term: Term, mapping: Mapping[str, Term]) -> Term:
    """Simultaneous capture-avoiding substitution.

    Runs as an iterative visit/combine machine.  Memo entries are per
    *node*, keyed ``(arena id, generation, mapping, removed binders)``
    and valued ``(result, changed)``: an unchanged hit returns the
    caller's own node so identity-preservation (``subst_vars(t, m) is
    t`` whenever nothing was substituted) survives memoization.
    """
    if not mapping:
        return term
    danger: Set[str] = set()
    for value in mapping.values():
        danger |= free_var_set(value)
    use_cache = _cache.enabled()
    base_key = None
    arena = None
    gen = 0
    if use_cache:
        base_key = tuple(sorted(mapping.items()))
        arena = _arena().current()
        gen = arena.generation

    tasks: list = [(_VISIT, term, dict(mapping), frozenset())]
    vals: list = []
    while tasks:
        frame = tasks.pop()
        op = frame[0]
        if op == _VISIT:
            _, node, cur, removed = frame
            cls = node.__class__
            if cls is Var:
                vals.append(cur.get(node.name, node))
                continue
            if cls in _LEAVES or cls is Meta:
                vals.append(node)
                continue
            memo_key = None
            if use_cache:
                memo_key = (arena.intern_id(node), gen, base_key, removed)
                hit = _SUBST_CACHE.get(memo_key)
                if hit is not None:
                    result, changed = hit
                    vals.append(result if changed else node)
                    continue
            if cls is App:
                tasks.append((_APP, node, memo_key))
                for arg in reversed(node.args):
                    tasks.append((_VISIT, arg, cur, removed))
                tasks.append((_VISIT, node.fn, cur, removed))
            elif cls is Lam or cls is Forall or cls is Exists:
                var = node.var
                body = node.body
                if var in cur:
                    inner = {k: v for k, v in cur.items() if k != var}
                    if not inner:
                        # The binder shadows the whole mapping: the
                        # subtree is untouched.
                        if memo_key is not None:
                            _SUBST_CACHE.put(memo_key, (node, False))
                        vals.append(node)
                        continue
                    removed_inner = removed | frozenset((var,))
                else:
                    inner = cur
                    removed_inner = removed
                if var in danger:
                    taken = danger | set(inner) | free_vars(body)
                    new_var = fresh_name(var, taken)
                    # Reentrant rename: spins up a nested machine, so
                    # the Python stack grows only per *collision*, not
                    # per term depth.
                    body = subst_var(body, var, Var(new_var))
                    var = new_var
                tasks.append((_BIND, node, var, memo_key))
                tasks.append((_VISIT, body, inner, removed_inner))
            else:  # Impl / And / Or / Eq
                tasks.append((_PAIR, node, memo_key))
                tasks.append((_VISIT, node.rhs, cur, removed))
                tasks.append((_VISIT, node.lhs, cur, removed))
        elif op == _APP:
            _, node, memo_key = frame
            n = len(node.args)
            fn = vals[-(n + 1)]
            args = tuple(vals[-n:])
            del vals[-(n + 1):]
            if fn is node.fn and all(
                a is b for a, b in zip(args, node.args)
            ):
                result = node
            else:
                result = app(fn, *args)
            if memo_key is not None:
                _SUBST_CACHE.put(memo_key, (result, result is not node))
            vals.append(result)
        elif op == _BIND:
            _, node, var, memo_key = frame
            body = vals.pop()
            if var is node.var and body is node.body:
                result = node
            else:
                result = node.__class__(var, node.ty, body)
            if memo_key is not None:
                _SUBST_CACHE.put(memo_key, (result, result is not node))
            vals.append(result)
        else:  # _PAIR
            _, node, memo_key = frame
            rhs = vals.pop()
            lhs = vals.pop()
            if lhs is node.lhs and rhs is node.rhs:
                result = node
            elif node.__class__ is Eq:
                result = Eq(node.ty, lhs, rhs)
            else:
                result = node.__class__(lhs, rhs)
            if memo_key is not None:
                _SUBST_CACHE.put(memo_key, (result, result is not node))
            vals.append(result)
    return vals[0]


_RESOLVE_CACHE = _cache.BoundedCache("subst_metas", capacity=32_768)


def subst_metas(term: Term, solutions: Mapping[int, Term]) -> Term:
    """Replace solved metavariables by their solutions, transitively.

    Same machine shape as :func:`subst_vars`, plus a per-node fast
    path: a subtree whose (cached) meta set is disjoint from the
    solution map is returned unchanged without being walked — the
    common ``resolve()`` call on a meta-free goal is O(1).
    """
    if not solutions:
        return term
    use_cache = _cache.enabled()
    solsig = None
    arena = None
    gen = 0
    if use_cache:
        metas = meta_set(term)
        if not metas or all(uid not in solutions for uid in metas):
            return term
        solsig = tuple(sorted(solutions.items()))
        arena = _arena().current()
        gen = arena.generation

    tasks: list = [(_VISIT, term)]
    vals: list = []
    while tasks:
        frame = tasks.pop()
        op = frame[0]
        if op == _VISIT:
            node = frame[1]
            cls = node.__class__
            if cls is Meta:
                solution = solutions.get(node.uid)
                if solution is None:
                    vals.append(node)
                else:
                    # Transitive: the solution may itself mention
                    # solved metas; its result stands in for this one.
                    tasks.append((_VISIT, solution))
                continue
            if cls is Var or cls in _LEAVES:
                vals.append(node)
                continue
            memo_key = None
            if use_cache:
                metas = meta_set(node)
                if not metas or all(uid not in solutions for uid in metas):
                    vals.append(node)
                    continue
                memo_key = (arena.intern_id(node), gen, solsig)
                hit = _RESOLVE_CACHE.get(memo_key)
                if hit is not None:
                    result, changed = hit
                    vals.append(result if changed else node)
                    continue
            if cls is App:
                tasks.append((_APP, node, memo_key))
                for arg in reversed(node.args):
                    tasks.append((_VISIT, arg))
                tasks.append((_VISIT, node.fn))
            elif cls is Lam or cls is Forall or cls is Exists:
                tasks.append((_BIND, node, node.var, memo_key))
                tasks.append((_VISIT, node.body))
            else:  # Impl / And / Or / Eq
                tasks.append((_PAIR, node, memo_key))
                tasks.append((_VISIT, node.rhs))
                tasks.append((_VISIT, node.lhs))
        elif op == _APP:
            _, node, memo_key = frame
            n = len(node.args)
            fn = vals[-(n + 1)]
            args = tuple(vals[-n:])
            del vals[-(n + 1):]
            if fn is node.fn and all(
                a is b for a, b in zip(args, node.args)
            ):
                result = node
            else:
                result = app(fn, *args)
            if memo_key is not None:
                _RESOLVE_CACHE.put(memo_key, (result, result is not node))
            vals.append(result)
        elif op == _BIND:
            _, node, var, memo_key = frame
            body = vals.pop()
            if body is node.body:
                result = node
            else:
                result = node.__class__(var, node.ty, body)
            if memo_key is not None:
                _RESOLVE_CACHE.put(memo_key, (result, result is not node))
            vals.append(result)
        else:  # _PAIR
            _, node, memo_key = frame
            rhs = vals.pop()
            lhs = vals.pop()
            if lhs is node.lhs and rhs is node.rhs:
                result = node
            elif node.__class__ is Eq:
                result = Eq(node.ty, lhs, rhs)
            else:
                result = node.__class__(lhs, rhs)
            if memo_key is not None:
                _RESOLVE_CACHE.put(memo_key, (result, result is not node))
            vals.append(result)
    return vals[0]


def alpha_eq(t1: Term, t2: Term) -> bool:
    """Alpha-equivalence (binder names are irrelevant)."""
    return _alpha_eq(t1, t2, {}, {}, 0)


def _alpha_eq(
    t1: Term,
    t2: Term,
    env1: Dict[str, int],
    env2: Dict[str, int],
    depth: int,
) -> bool:
    if isinstance(t1, Var) and isinstance(t2, Var):
        i1 = env1.get(t1.name)
        i2 = env2.get(t2.name)
        if i1 is None and i2 is None:
            return t1.name == t2.name
        return i1 == i2
    if type(t1) is not type(t2):
        return False
    if isinstance(t1, Const):
        return t1.name == t2.name  # type: ignore[union-attr]
    if isinstance(t1, (TrueP, FalseP)):
        return True
    if isinstance(t1, Meta):
        return t1.uid == t2.uid  # type: ignore[union-attr]
    if isinstance(t1, App):
        assert isinstance(t2, App)
        if len(t1.args) != len(t2.args):
            return False
        if not _alpha_eq(t1.fn, t2.fn, env1, env2, depth):
            return False
        return all(
            _alpha_eq(a, b, env1, env2, depth)
            for a, b in zip(t1.args, t2.args)
        )
    if isinstance(t1, (Lam, Forall, Exists)):
        assert isinstance(t2, (Lam, Forall, Exists))
        new1 = dict(env1)
        new2 = dict(env2)
        new1[t1.var] = depth
        new2[t2.var] = depth
        return _alpha_eq(t1.body, t2.body, new1, new2, depth + 1)
    if isinstance(t1, (Impl, And, Or)):
        assert isinstance(t2, (Impl, And, Or))
        return _alpha_eq(t1.lhs, t2.lhs, env1, env2, depth) and _alpha_eq(
            t1.rhs, t2.rhs, env1, env2, depth
        )
    if isinstance(t1, Eq):
        assert isinstance(t2, Eq)
        return _alpha_eq(t1.lhs, t2.lhs, env1, env2, depth) and _alpha_eq(
            t1.rhs, t2.rhs, env1, env2, depth
        )
    raise AssertionError(f"unknown term node: {t1!r}")


_ALPHA_KEY_CACHE = _cache.BoundedCache("alpha_key", capacity=8_192)


def alpha_key(term: Term) -> str:
    """A canonical string for ``term`` modulo bound-variable names.

    Two terms produce the same key iff they are alpha-equivalent
    (free variables and constants compare by name, binders by de
    Bruijn level).  Used to build duplicate-proof-state keys.
    """
    if _cache.enabled():
        hit = _ALPHA_KEY_CACHE.get(term)
        if hit is not None:
            return hit
        parts: list = []
        _alpha_key(term, {}, 0, parts)
        result = "".join(parts)
        _ALPHA_KEY_CACHE.put(term, result)
        return result
    parts = []
    _alpha_key(term, {}, 0, parts)
    return "".join(parts)


def alpha_fingerprint(term: Term) -> int:
    """An alpha-invariant structural hash of ``term``.

    Produces equal values exactly when :func:`alpha_key` produces
    equal strings (modulo the negligible 64-bit collision risk), but
    costs O(1) amortized: bound variables are hashed by de Bruijn
    *index* (distance to their binder), so a closed subterm hashes the
    same at any depth and its fingerprint memoizes — in the arena's
    ``alpha_fp`` parallel array, keyed by node id.  This is what
    :meth:`repro.kernel.goals.ProofState.fingerprint` — the search
    engine's duplicate-state key — is built from.
    """
    if not _cache.enabled():
        return _alpha_fp_pristine(term)
    arena = _arena().current()
    return arena.alpha_fp_of(arena.intern_id(term))


def _alpha_fp_pristine(term: Term) -> int:
    """The fingerprint by direct iterative walk: no arena, no memo.

    The kill-switch (``REPRO_KERNEL_CACHE=0`` / ``cache.disabled()``)
    oracle: value-identical to the arena computation, structured as a
    plain two-phase machine so even the un-memoized path survives
    5000-deep terms.
    """
    _EMPTY: Dict[str, int] = {}
    tasks: list = [(False, term, _EMPTY, 0)]
    vals: list = []
    while tasks:
        combining, t, env, depth = tasks.pop()
        cls = t.__class__
        if combining:
            if cls is App:
                n = len(t.args)
                child = vals[-(n + 1):]
                del vals[-(n + 1):]
                vals.append(hash(("a", n, child[0]) + tuple(child[1:])))
            elif cls is Lam or cls is Forall or cls is Exists:
                tag = {"Lam": "L", "Forall": "A", "Exists": "E"}[cls.__name__]
                vals.append(hash((tag, vals.pop())))
            elif cls is Eq:
                # The ty annotation is ignored, mirroring alpha_key.
                rhs = vals.pop()
                vals.append(hash(("=", vals.pop(), rhs)))
            else:  # Impl / And / Or
                tag = {"Impl": "I", "And": "&", "Or": "|"}[cls.__name__]
                rhs = vals.pop()
                vals.append(hash((tag, vals.pop(), rhs)))
            continue
        if cls is Var:
            level = env.get(t.name)
            if level is None:
                vals.append(hash(("v", t.name)))
            else:
                vals.append(hash(("b", depth - level)))
        elif cls is Const:
            vals.append(hash(("c", t.name)))
        elif cls is TrueP:
            vals.append(hash("T!"))
        elif cls is FalseP:
            vals.append(hash("F!"))
        elif cls is Meta:
            vals.append(hash(("m", t.uid)))
        elif cls is App:
            tasks.append((True, t, env, depth))
            for arg in reversed(t.args):
                tasks.append((False, arg, env, depth))
            tasks.append((False, t.fn, env, depth))
        elif cls is Lam or cls is Forall or cls is Exists:
            inner = dict(env)
            inner[t.var] = depth
            tasks.append((True, t, env, depth))
            tasks.append((False, t.body, inner, depth + 1))
        elif cls is Impl or cls is And or cls is Or or cls is Eq:
            tasks.append((True, t, env, depth))
            tasks.append((False, t.rhs, env, depth))
            tasks.append((False, t.lhs, env, depth))
        else:
            raise AssertionError(f"unknown term node: {t!r}")
    return vals[0]


def _alpha_key(term: Term, env: Dict[str, int], depth: int, parts: list) -> None:
    if isinstance(term, Var):
        level = env.get(term.name)
        if level is None:
            parts.append(f"v:{term.name};")
        else:
            parts.append(f"b:{level};")
    elif isinstance(term, Const):
        parts.append(f"c:{term.name};")
    elif isinstance(term, TrueP):
        parts.append("T;")
    elif isinstance(term, FalseP):
        parts.append("F;")
    elif isinstance(term, Meta):
        parts.append(f"m:{term.uid};")
    elif isinstance(term, App):
        parts.append(f"a{len(term.args)}(")
        _alpha_key(term.fn, env, depth, parts)
        for arg in term.args:
            _alpha_key(arg, env, depth, parts)
        parts.append(")")
    elif isinstance(term, (Lam, Forall, Exists)):
        tag = {"Lam": "L", "Forall": "A", "Exists": "E"}[type(term).__name__]
        inner = dict(env)
        inner[term.var] = depth
        parts.append(f"{tag}(")
        _alpha_key(term.body, inner, depth + 1, parts)
        parts.append(")")
    elif isinstance(term, (Impl, And, Or)):
        tag = {"Impl": "I", "And": "&", "Or": "|"}[type(term).__name__]
        parts.append(f"{tag}(")
        _alpha_key(term.lhs, env, depth, parts)
        _alpha_key(term.rhs, env, depth, parts)
        parts.append(")")
    elif isinstance(term, Eq):
        parts.append("=(")
        _alpha_key(term.lhs, env, depth, parts)
        _alpha_key(term.rhs, env, depth, parts)
        parts.append(")")
    else:
        raise AssertionError(f"unknown term node: {term!r}")
