"""Substitution and alpha-equivalence on kernel terms.

Three related operations live here:

* :func:`subst_var` — capture-avoiding substitution of a term for a
  free variable.
* :func:`subst_metas` — instantiation of metavariables from a solution
  map (metavariables are never bound, so no capture can occur through
  them, but the *replacement* may mention variables that a binder in
  the target would capture; we rename binders away from those too).
* :func:`alpha_eq` / :func:`alpha_key` — alpha-equivalence test and a
  canonical string key used for duplicate-proof-state detection in the
  best-first search (the paper prunes tactics that recreate an already
  visited state).
* :func:`alpha_fingerprint` — the integer counterpart of
  :func:`alpha_key`: an alpha-invariant structural hash (bound
  variables enter by de Bruijn *index*, so closed subterms hash
  position-independently and their fingerprints memoize per node).
  The search engine's duplicate-state keys are built from these.

The hot entry points (``subst_vars``, ``subst_metas``, ``alpha_key``,
``alpha_fingerprint``) are memoized through
:mod:`repro.kernel.cache`; substitution additionally preserves node
identity when nothing changes, so memo keys stay coherent downstream.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Set, Tuple

from repro.kernel import cache as _cache
from repro.kernel.terms import (
    App,
    And,
    Const,
    Eq,
    Exists,
    FalseP,
    Forall,
    Impl,
    Lam,
    Meta,
    Or,
    Term,
    TrueP,
    Var,
    app,
    free_var_set,
    free_vars,
    meta_set,
)

__all__ = [
    "fresh_name",
    "rename_bound",
    "subst_var",
    "subst_vars",
    "subst_metas",
    "alpha_eq",
    "alpha_key",
    "alpha_fingerprint",
]


def fresh_name(base: str, taken: Set[str]) -> str:
    """A variant of ``base`` not in ``taken`` (``x``, ``x0``, ``x1``...)."""
    if base not in taken:
        return base
    stem = base.rstrip("0123456789") or base
    index = 0
    while True:
        candidate = f"{stem}{index}"
        if candidate not in taken:
            return candidate
        index += 1


def _binder_cls(term: Term):
    return type(term)


def rename_bound(term: Term, old: str, new: str) -> Term:
    """Rename the binder variable of a binder node (caller checks kind)."""
    if isinstance(term, (Lam, Forall, Exists)):
        body = subst_var(term.body, old, Var(new))
        return _binder_cls(term)(new, term.ty, body)
    raise ValueError(f"not a binder: {term!r}")


def subst_var(term: Term, name: str, replacement: Term) -> Term:
    """Capture-avoiding ``term[name := replacement]``."""
    return subst_vars(term, {name: replacement})


_SUBST_CACHE = _cache.BoundedCache("subst_vars", capacity=16_384)


def subst_vars(term: Term, mapping: Mapping[str, Term]) -> Term:
    """Simultaneous capture-avoiding substitution."""
    if not mapping:
        return term
    key = None
    if _cache.enabled():
        key = (term, tuple(sorted(mapping.items())))
        hit = _SUBST_CACHE.get(key)
        if hit is not None:
            return hit
    danger: Set[str] = set()
    for value in mapping.values():
        danger |= free_var_set(value)
    result = _subst(term, dict(mapping), danger)
    if key is not None:
        _SUBST_CACHE.put(key, result)
    return result


def _subst(term: Term, mapping: Dict[str, Term], danger: Set[str]) -> Term:
    if isinstance(term, Var):
        return mapping.get(term.name, term)
    if isinstance(term, (Const, TrueP, FalseP, Meta)):
        return term
    if isinstance(term, App):
        fn = _subst(term.fn, mapping, danger)
        args = tuple(_subst(a, mapping, danger) for a in term.args)
        if fn is term.fn and all(a is b for a, b in zip(args, term.args)):
            return term
        return app(fn, *args)
    if isinstance(term, (Lam, Forall, Exists)):
        var = term.var
        body = term.body
        inner = {k: v for k, v in mapping.items() if k != var}
        if not inner:
            return term
        if var in danger:
            taken = danger | set(inner) | free_vars(body)
            new_var = fresh_name(var, taken)
            body = subst_var(body, var, Var(new_var))
            var = new_var
        new_body = _subst(body, inner, danger)
        if var is term.var and new_body is term.body:
            return term
        return _binder_cls(term)(var, term.ty, new_body)
    if isinstance(term, (Impl, And, Or)):
        lhs = _subst(term.lhs, mapping, danger)
        rhs = _subst(term.rhs, mapping, danger)
        if lhs is term.lhs and rhs is term.rhs:
            return term
        return _binder_cls(term)(lhs, rhs)
    if isinstance(term, Eq):
        lhs = _subst(term.lhs, mapping, danger)
        rhs = _subst(term.rhs, mapping, danger)
        if lhs is term.lhs and rhs is term.rhs:
            return term
        return Eq(term.ty, lhs, rhs)
    raise AssertionError(f"unknown term node: {term!r}")


_RESOLVE_CACHE = _cache.BoundedCache("subst_metas", capacity=16_384)


def subst_metas(term: Term, solutions: Mapping[int, Term]) -> Term:
    """Replace solved metavariables by their solutions, transitively."""
    if not solutions:
        return term
    if _cache.enabled():
        # The common resolve() call sees a term with no (solved) metas;
        # the cached meta set turns that into an O(1) no-op.
        metas = meta_set(term)
        if not metas or all(uid not in solutions for uid in metas):
            return term
        key = (term, tuple(sorted(solutions.items())))
        hit = _RESOLVE_CACHE.get(key)
        if hit is not None:
            return hit
        result = _subst_metas(term, solutions)
        _RESOLVE_CACHE.put(key, result)
        return result
    return _subst_metas(term, solutions)


def _subst_metas(term: Term, solutions: Mapping[int, Term]) -> Term:
    if isinstance(term, Meta):
        solution = solutions.get(term.uid)
        if solution is None:
            return term
        return _subst_metas(solution, solutions)
    if isinstance(term, (Var, Const, TrueP, FalseP)):
        return term
    if isinstance(term, App):
        fn = _subst_metas(term.fn, solutions)
        args = tuple(_subst_metas(a, solutions) for a in term.args)
        if fn is term.fn and all(a is b for a, b in zip(args, term.args)):
            return term
        return app(fn, *args)
    if isinstance(term, (Lam, Forall, Exists)):
        body = _subst_metas(term.body, solutions)
        if body is term.body:
            return term
        return _binder_cls(term)(term.var, term.ty, body)
    if isinstance(term, (Impl, And, Or)):
        lhs = _subst_metas(term.lhs, solutions)
        rhs = _subst_metas(term.rhs, solutions)
        if lhs is term.lhs and rhs is term.rhs:
            return term
        return _binder_cls(term)(lhs, rhs)
    if isinstance(term, Eq):
        lhs = _subst_metas(term.lhs, solutions)
        rhs = _subst_metas(term.rhs, solutions)
        if lhs is term.lhs and rhs is term.rhs:
            return term
        return Eq(term.ty, lhs, rhs)
    raise AssertionError(f"unknown term node: {term!r}")


def alpha_eq(t1: Term, t2: Term) -> bool:
    """Alpha-equivalence (binder names are irrelevant)."""
    return _alpha_eq(t1, t2, {}, {}, 0)


def _alpha_eq(
    t1: Term,
    t2: Term,
    env1: Dict[str, int],
    env2: Dict[str, int],
    depth: int,
) -> bool:
    if isinstance(t1, Var) and isinstance(t2, Var):
        i1 = env1.get(t1.name)
        i2 = env2.get(t2.name)
        if i1 is None and i2 is None:
            return t1.name == t2.name
        return i1 == i2
    if type(t1) is not type(t2):
        return False
    if isinstance(t1, Const):
        return t1.name == t2.name  # type: ignore[union-attr]
    if isinstance(t1, (TrueP, FalseP)):
        return True
    if isinstance(t1, Meta):
        return t1.uid == t2.uid  # type: ignore[union-attr]
    if isinstance(t1, App):
        assert isinstance(t2, App)
        if len(t1.args) != len(t2.args):
            return False
        if not _alpha_eq(t1.fn, t2.fn, env1, env2, depth):
            return False
        return all(
            _alpha_eq(a, b, env1, env2, depth)
            for a, b in zip(t1.args, t2.args)
        )
    if isinstance(t1, (Lam, Forall, Exists)):
        assert isinstance(t2, (Lam, Forall, Exists))
        new1 = dict(env1)
        new2 = dict(env2)
        new1[t1.var] = depth
        new2[t2.var] = depth
        return _alpha_eq(t1.body, t2.body, new1, new2, depth + 1)
    if isinstance(t1, (Impl, And, Or)):
        assert isinstance(t2, (Impl, And, Or))
        return _alpha_eq(t1.lhs, t2.lhs, env1, env2, depth) and _alpha_eq(
            t1.rhs, t2.rhs, env1, env2, depth
        )
    if isinstance(t1, Eq):
        assert isinstance(t2, Eq)
        return _alpha_eq(t1.lhs, t2.lhs, env1, env2, depth) and _alpha_eq(
            t1.rhs, t2.rhs, env1, env2, depth
        )
    raise AssertionError(f"unknown term node: {t1!r}")


_ALPHA_KEY_CACHE = _cache.BoundedCache("alpha_key", capacity=8_192)


def alpha_key(term: Term) -> str:
    """A canonical string for ``term`` modulo bound-variable names.

    Two terms produce the same key iff they are alpha-equivalent
    (free variables and constants compare by name, binders by de
    Bruijn level).  Used to build duplicate-proof-state keys.
    """
    if _cache.enabled():
        hit = _ALPHA_KEY_CACHE.get(term)
        if hit is not None:
            return hit
        parts: list = []
        _alpha_key(term, {}, 0, parts)
        result = "".join(parts)
        _ALPHA_KEY_CACHE.put(term, result)
        return result
    parts = []
    _alpha_key(term, {}, 0, parts)
    return "".join(parts)


_ALPHA_FP_CACHE = _cache.BoundedCache("alpha_fp", capacity=65_536)


def alpha_fingerprint(term: Term) -> int:
    """An alpha-invariant structural hash of ``term``.

    Produces equal values exactly when :func:`alpha_key` produces
    equal strings (modulo the negligible 64-bit collision risk), but
    costs O(1) amortized: bound variables are hashed by de Bruijn
    *index* (distance to their binder), so a closed subterm hashes the
    same at any depth and its fingerprint memoizes per node.  This is
    what :meth:`repro.kernel.goals.ProofState.fingerprint` — the
    search engine's duplicate-state key — is built from.
    """
    if not _cache.enabled():
        return _alpha_fp(term, {}, 0)
    hit = _ALPHA_FP_CACHE.get(term)
    if hit is not None:
        return hit
    fp = _alpha_fp(term, {}, 0)
    _ALPHA_FP_CACHE.put(term, fp)
    return fp


def _alpha_fp(term: Term, env: Dict[str, int], depth: int) -> int:
    if env and _cache.enabled() and free_var_set(term).isdisjoint(env):
        # Closed w.r.t. the enclosing binders: de Bruijn indices make
        # the value position-independent, so reuse the memoized one.
        return alpha_fingerprint(term)
    if isinstance(term, Var):
        level = env.get(term.name)
        if level is None:
            return hash(("v", term.name))
        return hash(("b", depth - level))
    if isinstance(term, Const):
        return hash(("c", term.name))
    if isinstance(term, TrueP):
        return hash("T!")
    if isinstance(term, FalseP):
        return hash("F!")
    if isinstance(term, Meta):
        return hash(("m", term.uid))
    if isinstance(term, App):
        return hash(
            ("a", len(term.args), _alpha_fp(term.fn, env, depth))
            + tuple(_alpha_fp(arg, env, depth) for arg in term.args)
        )
    if isinstance(term, (Lam, Forall, Exists)):
        tag = {"Lam": "L", "Forall": "A", "Exists": "E"}[type(term).__name__]
        inner = dict(env)
        inner[term.var] = depth
        return hash((tag, _alpha_fp(term.body, inner, depth + 1)))
    if isinstance(term, (Impl, And, Or)):
        tag = {"Impl": "I", "And": "&", "Or": "|"}[type(term).__name__]
        return hash(
            (tag, _alpha_fp(term.lhs, env, depth), _alpha_fp(term.rhs, env, depth))
        )
    if isinstance(term, Eq):
        # The ty annotation is ignored, mirroring alpha_key.
        return hash(
            ("=", _alpha_fp(term.lhs, env, depth), _alpha_fp(term.rhs, env, depth))
        )
    raise AssertionError(f"unknown term node: {term!r}")


def _alpha_key(term: Term, env: Dict[str, int], depth: int, parts: list) -> None:
    if isinstance(term, Var):
        level = env.get(term.name)
        if level is None:
            parts.append(f"v:{term.name};")
        else:
            parts.append(f"b:{level};")
    elif isinstance(term, Const):
        parts.append(f"c:{term.name};")
    elif isinstance(term, TrueP):
        parts.append("T;")
    elif isinstance(term, FalseP):
        parts.append("F;")
    elif isinstance(term, Meta):
        parts.append(f"m:{term.uid};")
    elif isinstance(term, App):
        parts.append(f"a{len(term.args)}(")
        _alpha_key(term.fn, env, depth, parts)
        for arg in term.args:
            _alpha_key(arg, env, depth, parts)
        parts.append(")")
    elif isinstance(term, (Lam, Forall, Exists)):
        tag = {"Lam": "L", "Forall": "A", "Exists": "E"}[type(term).__name__]
        inner = dict(env)
        inner[term.var] = depth
        parts.append(f"{tag}(")
        _alpha_key(term.body, inner, depth + 1, parts)
        parts.append(")")
    elif isinstance(term, (Impl, And, Or)):
        tag = {"Impl": "I", "And": "&", "Or": "|"}[type(term).__name__]
        parts.append(f"{tag}(")
        _alpha_key(term.lhs, env, depth, parts)
        _alpha_key(term.rhs, env, depth, parts)
        parts.append(")")
    elif isinstance(term, Eq):
        parts.append("=(")
        _alpha_key(term.lhs, env, depth, parts)
        _alpha_key(term.rhs, env, depth, parts)
        parts.append(")")
    else:
        raise AssertionError(f"unknown term node: {term!r}")
