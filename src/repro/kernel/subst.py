"""Substitution and alpha-equivalence on kernel terms.

Three related operations live here:

* :func:`subst_var` — capture-avoiding substitution of a term for a
  free variable.
* :func:`subst_metas` — instantiation of metavariables from a solution
  map (metavariables are never bound, so no capture can occur through
  them, but the *replacement* may mention variables that a binder in
  the target would capture; we rename binders away from those too).
* :func:`alpha_eq` / :func:`alpha_key` — alpha-equivalence test and a
  canonical string key used for duplicate-proof-state detection in the
  best-first search (the paper prunes tactics that recreate an already
  visited state).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Set, Tuple

from repro.kernel.terms import (
    App,
    And,
    Const,
    Eq,
    Exists,
    FalseP,
    Forall,
    Impl,
    Lam,
    Meta,
    Or,
    Term,
    TrueP,
    Var,
    app,
    free_vars,
)

__all__ = [
    "fresh_name",
    "rename_bound",
    "subst_var",
    "subst_vars",
    "subst_metas",
    "alpha_eq",
    "alpha_key",
]


def fresh_name(base: str, taken: Set[str]) -> str:
    """A variant of ``base`` not in ``taken`` (``x``, ``x0``, ``x1``...)."""
    if base not in taken:
        return base
    stem = base.rstrip("0123456789") or base
    index = 0
    while True:
        candidate = f"{stem}{index}"
        if candidate not in taken:
            return candidate
        index += 1


def _binder_cls(term: Term):
    return type(term)


def rename_bound(term: Term, old: str, new: str) -> Term:
    """Rename the binder variable of a binder node (caller checks kind)."""
    if isinstance(term, (Lam, Forall, Exists)):
        body = subst_var(term.body, old, Var(new))
        return _binder_cls(term)(new, term.ty, body)
    raise ValueError(f"not a binder: {term!r}")


def subst_var(term: Term, name: str, replacement: Term) -> Term:
    """Capture-avoiding ``term[name := replacement]``."""
    return subst_vars(term, {name: replacement})


def subst_vars(term: Term, mapping: Mapping[str, Term]) -> Term:
    """Simultaneous capture-avoiding substitution."""
    if not mapping:
        return term
    danger: Set[str] = set()
    for value in mapping.values():
        danger |= free_vars(value)
    return _subst(term, dict(mapping), danger)


def _subst(term: Term, mapping: Dict[str, Term], danger: Set[str]) -> Term:
    if isinstance(term, Var):
        return mapping.get(term.name, term)
    if isinstance(term, (Const, TrueP, FalseP, Meta)):
        return term
    if isinstance(term, App):
        fn = _subst(term.fn, mapping, danger)
        args = tuple(_subst(a, mapping, danger) for a in term.args)
        return app(fn, *args)
    if isinstance(term, (Lam, Forall, Exists)):
        var = term.var
        body = term.body
        inner = {k: v for k, v in mapping.items() if k != var}
        if not inner:
            return term
        if var in danger:
            taken = danger | set(inner) | free_vars(body)
            new_var = fresh_name(var, taken)
            body = subst_var(body, var, Var(new_var))
            var = new_var
        return _binder_cls(term)(var, term.ty, _subst(body, inner, danger))
    if isinstance(term, (Impl, And, Or)):
        return _binder_cls(term)(
            _subst(term.lhs, mapping, danger), _subst(term.rhs, mapping, danger)
        )
    if isinstance(term, Eq):
        return Eq(term.ty, _subst(term.lhs, mapping, danger), _subst(term.rhs, mapping, danger))
    raise AssertionError(f"unknown term node: {term!r}")


def subst_metas(term: Term, solutions: Mapping[int, Term]) -> Term:
    """Replace solved metavariables by their solutions, transitively."""
    if not solutions:
        return term
    return _subst_metas(term, solutions)


def _subst_metas(term: Term, solutions: Mapping[int, Term]) -> Term:
    if isinstance(term, Meta):
        solution = solutions.get(term.uid)
        if solution is None:
            return term
        return _subst_metas(solution, solutions)
    if isinstance(term, (Var, Const, TrueP, FalseP)):
        return term
    if isinstance(term, App):
        fn = _subst_metas(term.fn, solutions)
        args = tuple(_subst_metas(a, solutions) for a in term.args)
        return app(fn, *args)
    if isinstance(term, (Lam, Forall, Exists)):
        return _binder_cls(term)(term.var, term.ty, _subst_metas(term.body, solutions))
    if isinstance(term, (Impl, And, Or)):
        return _binder_cls(term)(
            _subst_metas(term.lhs, solutions), _subst_metas(term.rhs, solutions)
        )
    if isinstance(term, Eq):
        return Eq(term.ty, _subst_metas(term.lhs, solutions), _subst_metas(term.rhs, solutions))
    raise AssertionError(f"unknown term node: {term!r}")


def alpha_eq(t1: Term, t2: Term) -> bool:
    """Alpha-equivalence (binder names are irrelevant)."""
    return _alpha_eq(t1, t2, {}, {}, 0)


def _alpha_eq(
    t1: Term,
    t2: Term,
    env1: Dict[str, int],
    env2: Dict[str, int],
    depth: int,
) -> bool:
    if isinstance(t1, Var) and isinstance(t2, Var):
        i1 = env1.get(t1.name)
        i2 = env2.get(t2.name)
        if i1 is None and i2 is None:
            return t1.name == t2.name
        return i1 == i2
    if type(t1) is not type(t2):
        return False
    if isinstance(t1, Const):
        return t1.name == t2.name  # type: ignore[union-attr]
    if isinstance(t1, (TrueP, FalseP)):
        return True
    if isinstance(t1, Meta):
        return t1.uid == t2.uid  # type: ignore[union-attr]
    if isinstance(t1, App):
        assert isinstance(t2, App)
        if len(t1.args) != len(t2.args):
            return False
        if not _alpha_eq(t1.fn, t2.fn, env1, env2, depth):
            return False
        return all(
            _alpha_eq(a, b, env1, env2, depth)
            for a, b in zip(t1.args, t2.args)
        )
    if isinstance(t1, (Lam, Forall, Exists)):
        assert isinstance(t2, (Lam, Forall, Exists))
        new1 = dict(env1)
        new2 = dict(env2)
        new1[t1.var] = depth
        new2[t2.var] = depth
        return _alpha_eq(t1.body, t2.body, new1, new2, depth + 1)
    if isinstance(t1, (Impl, And, Or)):
        assert isinstance(t2, (Impl, And, Or))
        return _alpha_eq(t1.lhs, t2.lhs, env1, env2, depth) and _alpha_eq(
            t1.rhs, t2.rhs, env1, env2, depth
        )
    if isinstance(t1, Eq):
        assert isinstance(t2, Eq)
        return _alpha_eq(t1.lhs, t2.lhs, env1, env2, depth) and _alpha_eq(
            t1.rhs, t2.rhs, env1, env2, depth
        )
    raise AssertionError(f"unknown term node: {t1!r}")


def alpha_key(term: Term) -> str:
    """A canonical string for ``term`` modulo bound-variable names.

    Two terms produce the same key iff they are alpha-equivalent
    (free variables and constants compare by name, binders by de
    Bruijn level).  Used to build duplicate-proof-state keys.
    """
    parts: list = []
    _alpha_key(term, {}, 0, parts)
    return "".join(parts)


def _alpha_key(term: Term, env: Dict[str, int], depth: int, parts: list) -> None:
    if isinstance(term, Var):
        level = env.get(term.name)
        if level is None:
            parts.append(f"v:{term.name};")
        else:
            parts.append(f"b:{level};")
    elif isinstance(term, Const):
        parts.append(f"c:{term.name};")
    elif isinstance(term, TrueP):
        parts.append("T;")
    elif isinstance(term, FalseP):
        parts.append("F;")
    elif isinstance(term, Meta):
        parts.append(f"m:{term.uid};")
    elif isinstance(term, App):
        parts.append(f"a{len(term.args)}(")
        _alpha_key(term.fn, env, depth, parts)
        for arg in term.args:
            _alpha_key(arg, env, depth, parts)
        parts.append(")")
    elif isinstance(term, (Lam, Forall, Exists)):
        tag = {"Lam": "L", "Forall": "A", "Exists": "E"}[type(term).__name__]
        inner = dict(env)
        inner[term.var] = depth
        parts.append(f"{tag}(")
        _alpha_key(term.body, inner, depth + 1, parts)
        parts.append(")")
    elif isinstance(term, (Impl, And, Or)):
        tag = {"Impl": "I", "And": "&", "Or": "|"}[type(term).__name__]
        parts.append(f"{tag}(")
        _alpha_key(term.lhs, env, depth, parts)
        _alpha_key(term.rhs, env, depth, parts)
        parts.append(")")
    elif isinstance(term, Eq):
        parts.append("=(")
        _alpha_key(term.lhs, env, depth, parts)
        _alpha_key(term.rhs, env, depth, parts)
        parts.append(")")
    else:
        raise AssertionError(f"unknown term node: {term!r}")
