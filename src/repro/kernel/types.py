"""Simple polymorphic types for the proof kernel.

The kernel's logic is polymorphic first-order logic with inductive
datatypes, so its type language is deliberately small:

* :class:`TCon` — a type constructor applied to argument types
  (``nat``, ``bool``, ``list T``, ``prod A B``...).  ``Prop`` is the
  type of propositions and is represented as the nullary constructor
  ``TCon('Prop')``.
* :class:`TVar` — a type variable, used both for polymorphic constants
  in the signature (``cons : A -> list A -> list A``) and during type
  inference.
* :class:`TArrow` — function types, needed for higher-order constants
  such as ``map : (A -> B) -> list A -> list B`` and for predicates
  passed as arguments (``Forall : (A -> Prop) -> list A -> Prop``).

Types are immutable; all operations return new values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import UnificationError

__all__ = [
    "Type",
    "TVar",
    "TCon",
    "TArrow",
    "PROP",
    "NAT",
    "BOOL",
    "tlist",
    "tprod",
    "toption",
    "arrows",
    "type_vars",
    "apply_tsubst",
    "unify_types",
    "instantiate_scheme",
    "fresh_tvar",
]


class Type:
    """Abstract base class of kernel types."""

    __slots__ = ()

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class TVar(Type):
    """A type variable such as ``A`` in a polymorphic signature entry."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TCon(Type):
    """A type constructor applied to zero or more argument types."""

    name: str
    args: Tuple[Type, ...] = ()

    def __str__(self) -> str:
        if not self.args:
            return self.name
        parts = " ".join(_atom_str(a) for a in self.args)
        return f"{self.name} {parts}"


@dataclass(frozen=True)
class TArrow(Type):
    """The function type ``dom -> cod``."""

    dom: Type
    cod: Type

    def __str__(self) -> str:
        return f"{_atom_str(self.dom)} -> {self.cod}"


def _atom_str(ty: Type) -> str:
    """Render ``ty``, parenthesizing anything that is not atomic."""
    text = str(ty)
    needs_parens = isinstance(ty, TArrow) or (
        isinstance(ty, TCon) and ty.args
    )
    return f"({text})" if needs_parens else text


PROP = TCon("Prop")
NAT = TCon("nat")
BOOL = TCon("bool")


def tlist(elem: Type) -> Type:
    """The type ``list elem``."""
    return TCon("list", (elem,))


def tprod(a: Type, b: Type) -> Type:
    """The type ``prod a b`` of pairs."""
    return TCon("prod", (a, b))


def toption(elem: Type) -> Type:
    """The type ``option elem``."""
    return TCon("option", (elem,))


def arrows(*types: Type) -> Type:
    """Right-fold ``types`` into a curried arrow type.

    ``arrows(a, b, c)`` is ``a -> b -> c``.
    """
    if not types:
        raise ValueError("arrows() requires at least one type")
    result = types[-1]
    for ty in reversed(types[:-1]):
        result = TArrow(ty, result)
    return result


def type_vars(ty: Type) -> Iterator[str]:
    """Yield the names of type variables occurring in ``ty`` (with dups)."""
    if isinstance(ty, TVar):
        yield ty.name
    elif isinstance(ty, TCon):
        for arg in ty.args:
            yield from type_vars(arg)
    elif isinstance(ty, TArrow):
        yield from type_vars(ty.dom)
        yield from type_vars(ty.cod)


TSubst = Dict[str, Type]


def apply_tsubst(subst: TSubst, ty: Type) -> Type:
    """Apply a type substitution to ``ty`` (idempotent closure)."""
    if isinstance(ty, TVar):
        replacement = subst.get(ty.name)
        if replacement is None:
            return ty
        # Chase chains so callers may build substitutions incrementally.
        return apply_tsubst(subst, replacement) if replacement != ty else ty
    if isinstance(ty, TCon):
        if not ty.args:
            return ty
        return TCon(ty.name, tuple(apply_tsubst(subst, a) for a in ty.args))
    if isinstance(ty, TArrow):
        return TArrow(apply_tsubst(subst, ty.dom), apply_tsubst(subst, ty.cod))
    raise AssertionError(f"unknown type node: {ty!r}")


def _occurs(name: str, ty: Type, subst: TSubst) -> bool:
    ty = apply_tsubst(subst, ty)
    if isinstance(ty, TVar):
        return ty.name == name
    if isinstance(ty, TCon):
        return any(_occurs(name, a, subst) for a in ty.args)
    if isinstance(ty, TArrow):
        return _occurs(name, ty.dom, subst) or _occurs(name, ty.cod, subst)
    return False


def unify_types(t1: Type, t2: Type, subst: Optional[TSubst] = None) -> TSubst:
    """Unify two types, extending and returning ``subst``.

    Raises :class:`UnificationError` when the types clash.  The input
    substitution is not mutated on failure.
    """
    if subst is None:
        subst = {}
    working = dict(subst)
    _unify_into(t1, t2, working)
    return working


def _unify_into(t1: Type, t2: Type, subst: TSubst) -> None:
    t1 = apply_tsubst(subst, t1)
    t2 = apply_tsubst(subst, t2)
    if isinstance(t1, TVar):
        if isinstance(t2, TVar) and t2.name == t1.name:
            return
        if _occurs(t1.name, t2, subst):
            raise UnificationError(f"occurs check: {t1} in {t2}")
        subst[t1.name] = t2
        return
    if isinstance(t2, TVar):
        _unify_into(t2, t1, subst)
        return
    if isinstance(t1, TCon) and isinstance(t2, TCon):
        if t1.name != t2.name or len(t1.args) != len(t2.args):
            raise UnificationError(f"type clash: {t1} vs {t2}")
        for a, b in zip(t1.args, t2.args):
            _unify_into(a, b, subst)
        return
    if isinstance(t1, TArrow) and isinstance(t2, TArrow):
        _unify_into(t1.dom, t2.dom, subst)
        _unify_into(t1.cod, t2.cod, subst)
        return
    raise UnificationError(f"type clash: {t1} vs {t2}")


_FRESH_COUNTER = [0]


def fresh_tvar(hint: str = "t") -> TVar:
    """Return a globally fresh type variable (for inference)."""
    _FRESH_COUNTER[0] += 1
    return TVar(f"?{hint}{_FRESH_COUNTER[0]}")


def instantiate_scheme(ty: Type) -> Type:
    """Replace every type variable in ``ty`` with a fresh one.

    Signature entries are implicitly universally quantified over their
    type variables; each *use* of a constant gets fresh copies so
    independent applications do not interfere during inference.
    """
    mapping: Dict[str, Type] = {}
    for name in type_vars(ty):
        if name not in mapping:
            mapping[name] = fresh_tvar(name.strip("?"))
    return apply_tsubst(mapping, ty)
