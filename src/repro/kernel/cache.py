"""The kernel's hot-path cache layer.

Every candidate tactic the search engine tries costs substitution,
reduction, and a duplicate-detection key; best-first search revisits
the same hypothesis terms thousands of times, so the kernel memoizes
its pure functions.  This module holds the shared machinery:

* :class:`BoundedCache` — a FIFO-evicting dict with hit/miss counters,
  registered in a module-level registry so the evaluation layer can
  report hit rates per cache (``kernel.cache.<name>.*`` counters).
* a global enable switch — ``REPRO_KERNEL_CACHE=0`` in the
  environment, :func:`configure`, or the CLI's ``--no-kernel-cache``
  flag turn every memo off, restoring the pristine code paths (the
  differential-soundness oracle in ``tests/kernel``).
* an intern *epoch* — :func:`clear_caches` drops all cached entries
  and bumps the epoch, invalidating the ``intern()`` marks stamped on
  term objects (see :mod:`repro.kernel.terms`).
* cache *pins* — :func:`pinned` scopes a search's use of the caches.
  While any pin is held, :func:`clear_caches` **defers**: it records
  the request and returns, and the clear (entry drop + epoch bump)
  runs when the last pin is released.  Without this, the per-task
  clear issued by one finishing search would evict another concurrent
  search's live interned terms and memo entries under the thread
  backend / prover service — not unsound (the memos are pure, evicted
  entries just recompute), but an epoch bump mid-search invalidates
  the ``_interned`` stamps on every term the still-running search
  holds, forcing wholesale re-interning and re-derivation.  Deferral
  preserves the serial semantics exactly: with no concurrent pin, the
  clear is immediate, as before.

Safety argument (DESIGN.md §4a): every memoized function is a pure
function of its key.  Terms are frozen dataclasses, so a term-keyed
entry can never go stale; reduction additionally keys on the
environment object and its declaration generation, so corpus loading
(which mutates the environment between proofs) invalidates reduction
entries instead of serving stale ones.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "BoundedCache",
    "enabled",
    "configure",
    "disabled",
    "clear_caches",
    "pinned",
    "pin_count",
    "clear_pending",
    "intern_epoch",
    "cache_stats",
    "stats_delta",
]

_MISSING = object()

_ENABLED: bool = os.environ.get("REPRO_KERNEL_CACHE", "1").lower() not in (
    "0",
    "off",
    "false",
    "no",
)

# Bumped by clear_caches(); terms interned under an older epoch are
# re-interned on next use (their stamped epoch no longer matches).
_INTERN_EPOCH: int = 0

_REGISTRY: List["BoundedCache"] = []


class BoundedCache:
    """A memo table with an explicit size bound and hit/miss counters.

    Eviction is FIFO (dicts preserve insertion order): the memo
    workloads here are dominated by a hot recent working set, and FIFO
    keeps the hit path to a single dict probe.  Counters survive
    :meth:`clear` so sweep-level statistics accumulate across
    per-task cache resets.

    ``register=False`` keeps the cache out of the module registry, so
    :func:`clear_caches` (issued once per evaluation task) never wipes
    it — for consumers outside the kernel whose entries must outlive a
    single theorem search, e.g. the service's store-less proof cache.
    """

    __slots__ = ("name", "capacity", "data", "hits", "misses", "evictions")

    def __init__(
        self, name: str, capacity: int, register: bool = True
    ) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.data: Dict[Any, Any] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if register:
            _REGISTRY.append(self)

    def get(self, key: Any) -> Any:
        """The cached value for ``key``, or ``None`` (counted as miss)."""
        value = self.data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: Any, value: Any) -> None:
        data = self.data
        if len(data) >= self.capacity and key not in data:
            # FIFO eviction; tolerate races under the thread backend
            # (worst case a concurrent put already evicted the head).
            try:
                del data[next(iter(data))]
                self.evictions += 1
            except (StopIteration, KeyError, RuntimeError):
                pass
        data[key] = value

    def clear(self) -> None:
        self.data.clear()

    def stats(self) -> Dict[str, float]:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self.data),
            "capacity": self.capacity,
            "evictions": self.evictions,
            "hit_rate": self.hits / total if total else 0.0,
        }


# ----------------------------------------------------------------------
# Global switches
# ----------------------------------------------------------------------


def enabled() -> bool:
    """True when the kernel memo caches are active."""
    return _ENABLED


def configure(enabled: bool) -> None:
    """Globally enable/disable the kernel caches (``--no-kernel-cache``)."""
    global _ENABLED
    _ENABLED = bool(enabled)


@contextmanager
def disabled() -> Iterator[None]:
    """Run a block with every kernel cache bypassed (tests/oracles)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


def intern_epoch() -> int:
    return _INTERN_EPOCH


# Pin bookkeeping: how many searches currently rely on the live epoch,
# and whether a clear was requested while they ran.
_PIN_LOCK = threading.Lock()
_PIN_COUNT = 0
_CLEAR_PENDING = False


def _clear_now() -> None:
    # Bumping the epoch retires the term arena lazily: the next
    # arena access (repro.kernel.arena.current) sees the mismatch and
    # swaps in a fresh generation, so ids held by pinned searches stay
    # valid right up to the moment this bump is allowed to land.
    global _INTERN_EPOCH
    _INTERN_EPOCH += 1
    for cache in _REGISTRY:
        cache.clear()


def clear_caches() -> None:
    """Drop all cached entries (counters persist) and bump the epoch.

    The evaluation runner calls this once per task so the intern table
    and memo tables never outlive a theorem search by more than one
    task — the cache layer's memory bound.

    While any :func:`pinned` scope is active the clear is *deferred*
    until the last pin is released, so a task finishing under the
    thread backend (or the prover service) never evicts a concurrent
    task's live interned terms mid-search.
    """
    global _CLEAR_PENDING
    with _PIN_LOCK:
        if _PIN_COUNT > 0:
            _CLEAR_PENDING = True
            return
        _clear_now()


@contextmanager
def pinned() -> Iterator[None]:
    """Hold the current cache epoch live for the duration of a search.

    Re-entrant across threads (a shared counter, not a flag).  On
    release of the last pin, any :func:`clear_caches` requests that
    arrived while pinned run once — deferred, coalesced, never lost.
    """
    global _PIN_COUNT, _CLEAR_PENDING
    with _PIN_LOCK:
        _PIN_COUNT += 1
    try:
        yield
    finally:
        with _PIN_LOCK:
            _PIN_COUNT -= 1
            if _PIN_COUNT == 0 and _CLEAR_PENDING:
                _CLEAR_PENDING = False
                _clear_now()


def pin_count() -> int:
    """How many pinned scopes are currently active (service gauge)."""
    with _PIN_LOCK:
        return _PIN_COUNT


def clear_pending() -> bool:
    """True when a deferred :func:`clear_caches` is waiting on pins."""
    with _PIN_LOCK:
        return _CLEAR_PENDING


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------


def cache_stats() -> Dict[str, Dict[str, int]]:
    """Per-cache ``{hits, misses, size, capacity}`` snapshot."""
    return {cache.name: cache.stats() for cache in _REGISTRY}


def stats_delta(
    before: Dict[str, Dict[str, int]],
    after: Optional[Dict[str, Dict[str, int]]] = None,
) -> Dict[str, Dict[str, int]]:
    """Hit/miss deltas between two :func:`cache_stats` snapshots."""
    if after is None:
        after = cache_stats()
    delta: Dict[str, Dict[str, int]] = {}
    for name, cell in after.items():
        base = before.get(name, {})
        hits = cell["hits"] - base.get("hits", 0)
        misses = cell["misses"] - base.get("misses", 0)
        if hits or misses:
            delta[name] = {"hits": hits, "misses": misses}
    return delta
