"""The kernel's hot-path cache layer.

Every candidate tactic the search engine tries costs substitution,
reduction, and a duplicate-detection key; best-first search revisits
the same hypothesis terms thousands of times, so the kernel memoizes
its pure functions.  This module holds the shared machinery:

* :class:`BoundedCache` — a FIFO-evicting dict with hit/miss counters,
  registered in a module-level registry so the evaluation layer can
  report hit rates per cache (``kernel.cache.<name>.*`` counters).
* a global enable switch — ``REPRO_KERNEL_CACHE=0`` in the
  environment, :func:`configure`, or the CLI's ``--no-kernel-cache``
  flag turn every memo off, restoring the pristine code paths (the
  differential-soundness oracle in ``tests/kernel``).
* an intern *epoch* — :func:`clear_caches` drops all cached entries
  and bumps the epoch, invalidating the ``intern()`` marks stamped on
  term objects (see :mod:`repro.kernel.terms`).

Safety argument (DESIGN.md §7): every memoized function is a pure
function of its key.  Terms are frozen dataclasses, so a term-keyed
entry can never go stale; reduction additionally keys on the
environment object and its declaration generation, so corpus loading
(which mutates the environment between proofs) invalidates reduction
entries instead of serving stale ones.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "BoundedCache",
    "enabled",
    "configure",
    "disabled",
    "clear_caches",
    "intern_epoch",
    "cache_stats",
    "stats_delta",
]

_MISSING = object()

_ENABLED: bool = os.environ.get("REPRO_KERNEL_CACHE", "1").lower() not in (
    "0",
    "off",
    "false",
    "no",
)

# Bumped by clear_caches(); terms interned under an older epoch are
# re-interned on next use (their stamped epoch no longer matches).
_INTERN_EPOCH: int = 0

_REGISTRY: List["BoundedCache"] = []


class BoundedCache:
    """A memo table with an explicit size bound and hit/miss counters.

    Eviction is FIFO (dicts preserve insertion order): the memo
    workloads here are dominated by a hot recent working set, and FIFO
    keeps the hit path to a single dict probe.  Counters survive
    :meth:`clear` so sweep-level statistics accumulate across
    per-task cache resets.
    """

    __slots__ = ("name", "capacity", "data", "hits", "misses")

    def __init__(self, name: str, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.data: Dict[Any, Any] = {}
        self.hits = 0
        self.misses = 0
        _REGISTRY.append(self)

    def get(self, key: Any) -> Any:
        """The cached value for ``key``, or ``None`` (counted as miss)."""
        value = self.data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: Any, value: Any) -> None:
        data = self.data
        if len(data) >= self.capacity and key not in data:
            # FIFO eviction; tolerate races under the thread backend
            # (worst case a concurrent put already evicted the head).
            try:
                del data[next(iter(data))]
            except (StopIteration, KeyError, RuntimeError):
                pass
        data[key] = value

    def clear(self) -> None:
        self.data.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self.data),
            "capacity": self.capacity,
        }


# ----------------------------------------------------------------------
# Global switches
# ----------------------------------------------------------------------


def enabled() -> bool:
    """True when the kernel memo caches are active."""
    return _ENABLED


def configure(enabled: bool) -> None:
    """Globally enable/disable the kernel caches (``--no-kernel-cache``)."""
    global _ENABLED
    _ENABLED = bool(enabled)


@contextmanager
def disabled() -> Iterator[None]:
    """Run a block with every kernel cache bypassed (tests/oracles)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


def intern_epoch() -> int:
    return _INTERN_EPOCH


def clear_caches() -> None:
    """Drop all cached entries (counters persist) and bump the epoch.

    The evaluation runner calls this once per task so the intern table
    and memo tables never outlive a theorem search by more than one
    task — the cache layer's memory bound.
    """
    global _INTERN_EPOCH
    _INTERN_EPOCH += 1
    for cache in _REGISTRY:
        cache.clear()


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------


def cache_stats() -> Dict[str, Dict[str, int]]:
    """Per-cache ``{hits, misses, size, capacity}`` snapshot."""
    return {cache.name: cache.stats() for cache in _REGISTRY}


def stats_delta(
    before: Dict[str, Dict[str, int]],
    after: Optional[Dict[str, Dict[str, int]]] = None,
) -> Dict[str, Dict[str, int]]:
    """Hit/miss deltas between two :func:`cache_stats` snapshots."""
    if after is None:
        after = cache_stats()
    delta: Dict[str, Dict[str, int]] = {}
    for name, cell in after.items():
        base = before.get(name, {})
        hits = cell["hits"] - base.get("hits", 0)
        misses = cell["misses"] - base.get("misses", 0)
        if hits or misses:
            delta[name] = {"hits": hits, "misses": misses}
    return delta
