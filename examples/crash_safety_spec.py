"""Domain example: stating and proving a crash-safety spec in CHL.

The corpus's Crash Hoare Logic substrate is a real proof system: this
script states a fresh spec for a two-write transaction and proves it
interactively through the SerAPI-like session layer — the same seam
the proof-search engine drives.

Run:  python examples/crash_safety_spec.py
"""

from repro.corpus.loader import load_project
from repro.serapi import Session


def main() -> None:
    project = load_project()
    env = project.env

    # {F * a |-> v0}  write a v1; write a v2  {F * a |-> v2}
    # with crash condition "one of the three states".
    spec = (
        "forall (F : pred) (a : nat) (v0 v1 v2 : valu), "
        "hoare (F * a |-> v0) (PSeq (PWrite a v1) (PWrite a v2)) "
        "(F * a |-> v2) "
        "(por (F * a |-> v0) (por (F * a |-> v1) (F * a |-> v2)))"
    )
    session = Session.for_goal_text(env, spec)
    for sentence in [
        "intros",
        "eapply hoare_seq",
        "apply hoare_write",
        "apply pimpl_or_intro_l",
        "eapply pimpl_trans",
        "eapply pimpl_or_intro_l",
        "apply pimpl_or_intro_r",
        "apply hoare_write",
        "eapply pimpl_trans",
        "eapply pimpl_or_intro_l",
        "apply pimpl_or_intro_r",
        "eapply pimpl_trans",
        "eapply pimpl_or_intro_r",
        "apply pimpl_or_intro_r",
    ]:
        sid = session.add(sentence)
        session.exec(sid)
        print(f"  {sentence:28} -> {session.current_state().num_goals()} goals")
    assert session.is_complete()
    print("two-write crash-safety spec: proved (Qed)")


if __name__ == "__main__":
    main()
