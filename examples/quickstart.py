"""Quickstart: check a proof, then let a simulated LLM search for one.

Run:  python examples/quickstart.py
"""

from repro.corpus.loader import load_project
from repro.core import BestFirstSearch, SearchConfig
from repro.kernel.parser import parse_statement
from repro.llm import get_model
from repro.prompting import PromptBuilder
from repro.serapi import ProofChecker
from repro.tactics.script import run_script


def main() -> None:
    # 1. Load the FSCQ-like corpus: 300+ theorems, every human proof
    #    machine-checked during loading.
    project = load_project()
    print(f"corpus loaded: {len(project.theorems)} verified theorems")

    # 2. Use the kernel directly: state a lemma and check a proof.
    env = project.env
    statement = parse_statement(env, "forall n m, n + m = m + n")
    run_script(
        env,
        statement,
        "induction n; simpl; intros.\n"
        "- rewrite plus_0_r. reflexivity.\n"
        "- rewrite IHn. rewrite plus_n_Sm. reflexivity.",
    )
    print("hand-written proof of plus-commutativity: checked (Qed)")

    # 3. Ask the simulated GPT-4o to find a proof with best-first search
    #    (paper §3: width 8, fuel 128, 5 s tactic timeout), in the
    #    paper's hint setting (human proofs of a random 50 % of other
    #    theorems appear in the prompt).
    from repro.corpus.splits import make_splits

    model = get_model("gpt-4o")
    hints = make_splits(project).hint_names
    for name in ("app_nil_r", "Forall_inv", "plus_comm", "le_refl",
                 "rev_involutive", "map_length"):
        theorem = project.theorem(name)
        env_at = project.env_for(theorem)  # only earlier lemmas visible
        builder = PromptBuilder(
            project,
            theorem,
            hint_names=hints,
            window_tokens=model.context_window,
        )
        search = BestFirstSearch(ProofChecker(env_at), model, SearchConfig())
        result = search.prove(theorem.name, theorem.statement, builder.build)
        print(f"search outcome for {theorem.name}: {result.status.value} "
              f"({result.stats.queries} model queries)")
        if result.proved:
            proof = result.proof_text()
            run_script(env_at, theorem.statement, proof)  # re-verify
            print(f"generated proof (re-checked): {proof}")
            print(f"human proof was: {theorem.proof_text!r}")
            break


if __name__ == "__main__":
    main()
