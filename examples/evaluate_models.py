"""Domain example: a miniature version of the paper's evaluation.

Runs the best-first search for two models over a small slice of the
test split, in both the vanilla and hint settings, and prints the
Figure-1/Table-2 style summaries.

Run:  python examples/evaluate_models.py        (~1-2 minutes)
"""

from repro.eval import (
    ExperimentConfig,
    Runner,
    coverage_by_bin,
    coverage_under,
    outcome_row,
    overall_coverage,
    render_figure1,
)


def main() -> None:
    # 12 theorems per sweep, fuel 48 — a quick demo; the benchmarks and
    # scripts/run_experiments.py use the paper's full budgets.
    runner = Runner(config=ExperimentConfig(max_theorems=12, fuel=48))
    print(
        f"test split: {len(runner.splits.test)} theorems "
        f"({len(runner.splits.hint_names)} held out as hints)"
    )

    series = {}
    for model in ("gpt-4o-mini", "gpt-4o"):
        for hinted in (False, True):
            tag = f"{model} {'(hints)' if hinted else '(vanilla)'}"
            run = runner.run(model, hinted)
            series[tag] = coverage_by_bin(run.outcomes)
            row = outcome_row(run)
            print(
                f"{tag:24} proved={row.proved:6.1%} "
                f"stuck={row.stuck:6.1%} fuelout={row.fuelout:6.1%} "
                f"coverage<64tok={coverage_under(run.outcomes, 64):6.1%}"
            )

    print()
    print(render_figure1(series, "Coverage by human-proof length bin"))


if __name__ == "__main__":
    main()
